"""Connection matching: requests, possession index and Lemma 1 feasibility.

At every round ``t`` the set of *stripe requests* not yet wired,
``Y = {(s_1, t_1, b_1), …, (s_p, t_p, b_p)}``, must be matched against the
boxes that possess the corresponding data so that each box ``b`` serves at
most ``⌊u_b·c⌋`` stripes (Section 2.2).  Wiring connections according to
such a matching serves every request at round ``t+1``, since each stripe
has rate ``1/c``.

This module provides:

* :class:`StripeRequest` / :class:`RequestSet` — the request multiset ``Y``;
* :class:`PossessionIndex` — the "who possesses what" relation ``B(·)``,
  combining the static allocation with playback caches and relay caches;
* :class:`ConnectionMatcher` — builds the bipartite graph ``G`` from ``Y``
  to the boxes and solves the connection matching through max flow;
* :func:`check_feasibility_hall` — the direct (exponential) form of
  Lemma 1's condition ``∀X ⊆ Y : U_{B(X)} ≥ |X|/c``, used on small
  instances to validate the flow-based answer.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import combinations
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.allocation import Allocation
from repro.core.video import StripeId
from repro.flow.bipartite import BMatchingResult, FLOW_SOLVERS, solve_b_matching
from repro.flow.hopcroft_karp import hopcroft_karp_matching
from repro.util.validation import check_non_negative_integer, check_positive_integer

__all__ = [
    "StripeRequest",
    "RequestSet",
    "PossessionIndex",
    "ConnectionMatching",
    "ConnectionMatcher",
    "check_feasibility_hall",
]


@dataclass(frozen=True, order=True)
class StripeRequest:
    """A request ``(s_i, t_i, b_i)`` for stripe ``s_i`` made by box ``b_i`` at time ``t_i``."""

    stripe_id: int
    request_time: int
    box_id: int
    #: Whether this is a preloading request (vs a postponed one); only used
    #: for reporting, the matching treats both identically.
    is_preload: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        check_non_negative_integer(self.stripe_id, "stripe_id")
        check_non_negative_integer(self.request_time, "request_time")
        check_non_negative_integer(self.box_id, "box_id")


class RequestSet:
    """The multiset ``Y`` of stripe requests pending at a given round."""

    def __init__(self, requests: Iterable[StripeRequest] = ()):
        self._requests: List[StripeRequest] = list(requests)

    def add(self, request: StripeRequest) -> None:
        """Append a request to the multiset."""
        self._requests.append(request)

    def extend(self, requests: Iterable[StripeRequest]) -> None:
        """Append several requests."""
        self._requests.extend(requests)

    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self):
        return iter(self._requests)

    def __getitem__(self, index: int) -> StripeRequest:
        return self._requests[index]

    @property
    def requests(self) -> Tuple[StripeRequest, ...]:
        """The requests as an immutable tuple."""
        return tuple(self._requests)

    def stripe_multiset(self) -> List[int]:
        """The multiset ``S(Y)`` of requested stripe identifiers."""
        return [r.stripe_id for r in self._requests]

    def distinct_stripes(self) -> Set[int]:
        """The set of pairwise distinct requested stripes."""
        return {r.stripe_id for r in self._requests}

    def by_video(self, num_stripes_per_video: int) -> Dict[int, List[StripeRequest]]:
        """Group requests by the video their stripe belongs to."""
        check_positive_integer(num_stripes_per_video, "num_stripes_per_video")
        groups: Dict[int, List[StripeRequest]] = {}
        for request in self._requests:
            groups.setdefault(request.stripe_id // num_stripes_per_video, []).append(request)
        return groups

    def __repr__(self) -> str:  # pragma: no cover
        return f"RequestSet(size={len(self._requests)}, distinct={len(self.distinct_stripes())})"


_EMPTY_INT64 = np.empty(0, dtype=np.int64)


class _StripeSwarm:
    """Ring buffer of (box, request time) playback-cache entries for one stripe.

    Entries are appended in (normally non-decreasing) time order into a
    pair of numpy arrays; eviction advances a head offset in O(expired)
    and window queries are ``searchsorted`` slices.  Out-of-order appends
    (exercised by tests, never by the simulator) flip a flag and the live
    segment is re-sorted lazily on the next query.
    """

    __slots__ = ("boxes", "times", "head", "tail", "sorted")

    def __init__(self):
        self.boxes = np.empty(8, dtype=np.int64)
        self.times = np.empty(8, dtype=np.int64)
        self.head = 0
        self.tail = 0
        self.sorted = True

    def __len__(self) -> int:
        return self.tail - self.head

    def append(self, box: int, time: int) -> None:
        if self.tail == self.boxes.size:
            self._grow()
        if self.tail > self.head and time < self.times[self.tail - 1]:
            self.sorted = False
        self.boxes[self.tail] = box
        self.times[self.tail] = time
        self.tail += 1

    def _grow(self) -> None:
        live = self.tail - self.head
        if self.head > 0 and live <= self.boxes.size // 2:
            # Enough slack at the head: compact instead of reallocating.
            self.boxes[:live] = self.boxes[self.head: self.tail]
            self.times[:live] = self.times[self.head: self.tail]
        else:
            new_size = max(8, 2 * self.boxes.size)
            new_boxes = np.empty(new_size, dtype=np.int64)
            new_times = np.empty(new_size, dtype=np.int64)
            new_boxes[:live] = self.boxes[self.head: self.tail]
            new_times[:live] = self.times[self.head: self.tail]
            self.boxes, self.times = new_boxes, new_times
        self.head, self.tail = 0, live

    def _ensure_sorted(self) -> None:
        if not self.sorted:
            order = np.argsort(self.times[self.head: self.tail], kind="stable")
            self.boxes[self.head: self.tail] = self.boxes[self.head: self.tail][order]
            self.times[self.head: self.tail] = self.times[self.head: self.tail][order]
            self.sorted = True

    def evict_before(self, horizon: int) -> None:
        """Advance the head past every entry with time < ``horizon``."""
        self._ensure_sorted()
        head, tail, times = self.head, self.tail, self.times
        while head < tail and times[head] < horizon:
            head += 1
        self.head = head

    def window(self, lo_time: int, hi_time: int) -> np.ndarray:
        """Boxes with an entry time in ``[lo_time, hi_time)`` (may repeat)."""
        self._ensure_sorted()
        view = self.times[self.head: self.tail]
        a = int(np.searchsorted(view, lo_time, side="left"))
        b = int(np.searchsorted(view, hi_time, side="left"))
        return self.boxes[self.head + a: self.head + b]

    def live_boxes(self) -> np.ndarray:
        """All non-evicted boxes (may repeat)."""
        return self.boxes[self.head: self.tail]


class PossessionIndex:
    """The relation "box ``b`` possesses the data needed by request ``x``".

    A box possesses the data needed by request ``(s, t_i, b_i)`` at the
    current round ``t`` when any of the following holds (Section 2.2 and
    the relay extension of Section 4):

    * it statically stores a replica of ``s`` (random allocation);
    * it caches ``s`` as the relay of a poor box;
    * it itself requested ``s`` at some ``t_j`` with ``t − T ≤ t_j < t_i``
      (playback cache: it is further ahead in the same stripe).

    The static stripe→boxes relation is precomputed once from the
    allocation as a CSR (``indptr``/``indices``) index; the dynamic caches
    live in per-stripe ring buffers (O(expired) eviction).  The batched
    :meth:`adjacency_for` emits the whole round's bipartite adjacency as
    CSR arrays, which is what the Hopcroft–Karp matching kernel consumes.
    """

    def __init__(self, allocation: Allocation, cache_window: int):
        self._allocation = allocation
        self._window = check_positive_integer(cache_window, "cache_window")
        # Static stripe -> sorted distinct holder boxes, in CSR form.
        self._rebuild_static()
        # stripe_id -> ring buffer of (box, time) playback-cache entries.
        self._swarm: Dict[int, _StripeSwarm] = {}
        # Global (time, stripe) arrival log driving O(expired) eviction.
        self._timeline: Deque[Tuple[int, int]] = deque()
        self._timeline_sorted = True
        self._last_time: Optional[int] = None
        # stripe_id -> set of boxes relay-caching it (Section 4).
        self._relays: Dict[int, Set[int]] = {}
        self._relay_arrays: Dict[int, np.ndarray] = {}

    @property
    def allocation(self) -> Allocation:
        """The underlying static allocation."""
        return self._allocation

    @property
    def cache_window(self) -> int:
        """Playback-cache window ``T`` in rounds."""
        return self._window

    def _rebuild_static(self) -> None:
        allocation = self._allocation
        k = allocation.replicas_per_stripe
        num_stripes = allocation.num_stripes
        if num_stripes and k:
            grid = np.sort(allocation.replica_box.reshape(num_stripes, k), axis=1)
            keep = np.ones_like(grid, dtype=bool)
            if k > 1:
                keep[:, 1:] = grid[:, 1:] != grid[:, :-1]
            counts = keep.sum(axis=1)
            self._static_indptr = np.zeros(num_stripes + 1, dtype=np.int64)
            np.cumsum(counts, out=self._static_indptr[1:])
            self._static_boxes = grid[keep].astype(np.int64)
        else:
            self._static_indptr = np.zeros(num_stripes + 1, dtype=np.int64)
            self._static_boxes = _EMPTY_INT64

    def set_allocation(self, allocation: Allocation) -> None:
        """Swap the allocation reference without rebuilding the static index.

        Only valid when the replica placement is unchanged (e.g. the
        population grew around the same ``replica_box`` array); use
        :meth:`refresh_allocation` after placements changed.
        """
        if allocation.replica_box is not self._allocation.replica_box and not (
            allocation.replica_box.shape == self._allocation.replica_box.shape
            and np.array_equal(allocation.replica_box, self._allocation.replica_box)
        ):
            raise ValueError(
                "set_allocation requires an identical replica placement; "
                "use refresh_allocation for changed placements"
            )
        self._allocation = allocation

    def refresh_allocation(self, allocation: Allocation) -> None:
        """Adopt a new allocation, rebuilding the static stripe→boxes index.

        The dynamic state — playback-cache swarms, eviction timeline and
        relay caches — is preserved, which is what the live ``add_videos``
        reconfiguration needs: existing downloads keep serving while the
        static index grows.
        """
        self._allocation = allocation
        self._rebuild_static()

    # ------------------------------------------------------------------ #
    # Dynamic state maintenance
    # ------------------------------------------------------------------ #
    def record_download(self, stripe_id: StripeId, box_id: int, time: int) -> None:
        """Record that ``box_id`` requested/downloads ``stripe_id`` starting at ``time``."""
        stripe_id, box_id, time = int(stripe_id), int(box_id), int(time)
        swarm = self._swarm.get(stripe_id)
        if swarm is None:
            swarm = self._swarm[stripe_id] = _StripeSwarm()
        swarm.append(box_id, time)
        if self._last_time is not None and time < self._last_time:
            self._timeline_sorted = False
        else:
            self._last_time = time
        self._timeline.append((time, stripe_id))

    def record_relay_cache(self, stripe_id: StripeId, box_id: int) -> None:
        """Record that ``box_id`` relay-caches ``stripe_id`` for a poor box."""
        stripe_id = int(stripe_id)
        self._relays.setdefault(stripe_id, set()).add(int(box_id))
        self._relay_arrays.pop(stripe_id, None)

    def evict_before(self, current_time: int) -> None:
        """Drop cache entries older than ``current_time − T``."""
        horizon = current_time - self._window
        if self._timeline_sorted:
            timeline = self._timeline
            while timeline and timeline[0][0] < horizon:
                _, stripe_id = timeline.popleft()
                swarm = self._swarm.get(stripe_id)
                if swarm is None:
                    continue
                swarm.evict_before(horizon)
                if not len(swarm):
                    del self._swarm[stripe_id]
        else:
            # Out-of-order recordings (test-only path): scan every stripe.
            self._timeline = deque(
                (t, s) for (t, s) in sorted(self._timeline) if t >= horizon
            )
            self._timeline_sorted = True
            for stripe_id in list(self._swarm):
                swarm = self._swarm[stripe_id]
                swarm.evict_before(horizon)
                if not len(swarm):
                    del self._swarm[stripe_id]

    # ------------------------------------------------------------------ #
    # Possession queries
    # ------------------------------------------------------------------ #
    def static_servers(self, stripe_id: StripeId) -> np.ndarray:
        """Sorted distinct boxes statically holding ``stripe_id`` (CSR slice)."""
        stripe_id = int(stripe_id)
        return self._static_boxes[
            self._static_indptr[stripe_id]: self._static_indptr[stripe_id + 1]
        ]

    def _cache_boxes_array(
        self, stripe_id: int, request_time: int, current_time: int
    ) -> np.ndarray:
        """Playback-cache servers as an array slice (may contain duplicates)."""
        swarm = self._swarm.get(int(stripe_id))
        if swarm is None:
            return _EMPTY_INT64
        horizon = current_time - self._window
        return swarm.window(horizon, request_time)

    def _relay_array(self, stripe_id: int) -> np.ndarray:
        relays = self._relays.get(stripe_id)
        if not relays:
            return _EMPTY_INT64
        cached = self._relay_arrays.get(stripe_id)
        if cached is None or cached.size != len(relays):
            cached = np.fromiter(relays, dtype=np.int64, count=len(relays))
            self._relay_arrays[stripe_id] = cached
        return cached

    def cache_servers(
        self, stripe_id: StripeId, request_time: int, current_time: int
    ) -> Set[int]:
        """Boxes able to serve ``stripe_id`` from their playback cache."""
        return {
            int(b)
            for b in self._cache_boxes_array(int(stripe_id), request_time, current_time)
        }

    def servers_for(self, request: StripeRequest, current_time: int) -> Set[int]:
        """The neighbourhood ``B(x)`` of a request in the bipartite graph ``G``."""
        servers: Set[int] = set(self.static_servers(request.stripe_id).tolist())
        servers |= self._relays.get(int(request.stripe_id), set())
        servers |= self.cache_servers(request.stripe_id, request.request_time, current_time)
        return servers

    def adjacency_for(
        self,
        requests: Sequence[StripeRequest],
        current_time: int,
        exclude_self: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """CSR adjacency (requests → candidate server boxes) for one round.

        Row ``i`` lists the boxes that possess the data of ``requests[i]``
        — excluding the requesting box itself unless ``exclude_self`` is
        disabled.  Rows may contain duplicates (a box can hold a stripe
        statically *and* cache it); the matching kernel tolerates them.
        The output feeds
        :func:`repro.flow.hopcroft_karp.hopcroft_karp_matching` directly.
        """
        num = len(requests)
        if num == 0:
            return np.zeros(1, dtype=np.int64), _EMPTY_INT64
        # Subclasses predating the batched API may override the set-based
        # ``servers_for``/``cache_servers`` only; honour their overrides
        # through the (slower) set-driven fallback.
        set_override = type(self).servers_for is not PossessionIndex.servers_for or (
            type(self).cache_servers is not PossessionIndex.cache_servers
            and type(self)._cache_boxes_array is PossessionIndex._cache_boxes_array
        )
        if set_override:
            return self._adjacency_from_sets(requests, current_time, exclude_self)

        stripes = np.fromiter((r.stripe_id for r in requests), dtype=np.int64, count=num)
        boxes = np.fromiter((r.box_id for r in requests), dtype=np.int64, count=num)
        # Static holders, gathered for all requests at once: row i is the
        # CSR slice of its stripe, materialized through one fancy index.
        row_starts = self._static_indptr[stripes]
        lens = self._static_indptr[stripes + 1] - row_starts
        total = int(lens.sum())
        offsets = np.zeros(num + 1, dtype=np.int64)
        np.cumsum(lens, out=offsets[1:])
        gather = (
            np.arange(total, dtype=np.int64)
            - np.repeat(offsets[:-1], lens)
            + np.repeat(row_starts, lens)
        )
        all_vals = self._static_boxes[gather]
        all_rows = np.repeat(np.arange(num, dtype=np.int64), lens)

        # Dynamic additions (playback caches, relays) touch few stripes;
        # only requests whose stripe has dynamic state pay a per-row cost.
        # An overridden cache hook may draw on state outside the base
        # ``_swarm`` dict, so it must be consulted for every request.
        cache_hook_overridden = (
            type(self)._cache_boxes_array is not PossessionIndex._cache_boxes_array
        )
        if self._swarm or self._relays or cache_hook_overridden:
            extra_vals: List[np.ndarray] = []
            extra_rows: List[np.ndarray] = []
            swarm, relays = self._swarm, self._relays
            for i, request in enumerate(requests):
                stripe_id = int(stripes[i])
                if cache_hook_overridden or stripe_id in swarm:
                    window = self._cache_boxes_array(
                        stripe_id, request.request_time, current_time
                    )
                    if window.size:
                        extra_vals.append(window)
                        extra_rows.append(np.full(window.size, i, dtype=np.int64))
                if stripe_id in relays:
                    relay = self._relay_array(stripe_id)
                    if relay.size:
                        extra_vals.append(relay)
                        extra_rows.append(np.full(relay.size, i, dtype=np.int64))
            if extra_vals:
                all_vals = np.concatenate([all_vals] + extra_vals)
                all_rows = np.concatenate([all_rows] + extra_rows)
                order = np.argsort(all_rows, kind="stable")
                all_vals = all_vals[order]
                all_rows = all_rows[order]

        if exclude_self:
            mask = all_vals != boxes[all_rows]
            if not mask.all():
                all_vals = all_vals[mask]
                all_rows = all_rows[mask]
        counts = np.bincount(all_rows, minlength=num)
        indptr = np.zeros(num + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, all_vals

    def _adjacency_from_sets(
        self,
        requests: Sequence[StripeRequest],
        current_time: int,
        exclude_self: bool,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Compatibility adjacency builder driven by :meth:`servers_for`."""
        rows: List[np.ndarray] = []
        indptr = np.zeros(len(requests) + 1, dtype=np.int64)
        for i, request in enumerate(requests):
            servers = self.servers_for(request, current_time)
            if exclude_self:
                servers.discard(request.box_id)
            row = np.fromiter(servers, dtype=np.int64, count=len(servers))
            rows.append(row)
            indptr[i + 1] = indptr[i] + row.size
        indices = np.concatenate(rows) if rows else _EMPTY_INT64
        return indptr, indices

    def swarm_size(self, video_id: int, num_stripes_per_video: int) -> int:
        """Number of distinct boxes currently downloading any stripe of a video."""
        base = video_id * num_stripes_per_video
        boxes: Set[int] = set()
        for stripe_id in range(base, base + num_stripes_per_video):
            swarm = self._swarm.get(stripe_id)
            if swarm is not None:
                boxes.update(swarm.live_boxes().tolist())
        return len(boxes)


@dataclass(frozen=True)
class ConnectionMatching:
    """Result of wiring the requests of one round.

    Attributes
    ----------
    feasible:
        Whether every request could be assigned a server.
    assignment:
        For each request (in the order of the request set), the box serving
        it, or ``-1`` when infeasible and left unmatched.
    matched:
        Number of matched requests.
    request_set:
        The request multiset that was matched.
    obstruction_witness:
        When infeasible, indices (into the request set) of a subset ``X``
        violating the Lemma 1 condition ``U_{B(X)} ≥ |X|/c``.
    box_load:
        Per-box number of stripes served under the returned assignment.
    capacities:
        Effective per-box capacities the matching was solved against
        (upload slots minus any ``busy_slots``, clipped at zero) — the
        exact right-hand side of the solved instance, reused by the
        differential solver oracle.
    """

    feasible: bool
    assignment: np.ndarray
    matched: int
    request_set: RequestSet
    obstruction_witness: Optional[Tuple[int, ...]]
    box_load: np.ndarray
    capacities: np.ndarray


class ConnectionMatcher:
    """Builds the bipartite graph ``G`` and solves the connection matching.

    Parameters
    ----------
    upload_slots:
        Per-box number of stripes uploadable per round, ``⌊u_b·c⌋``,
        possibly already reduced by statically reserved relay capacity
        (Section 4).
    solver:
        ``"hopcroft_karp"`` (default) matches directly on the CSR
        adjacency emitted by :meth:`PossessionIndex.adjacency_for`;
        ``"dinic"``, ``"push_relabel"`` and ``"edmonds_karp"`` keep the
        original edge-list → max-flow reduction and serve as oracles in
        cross-validation tests and benchmarks.
    """

    def __init__(self, upload_slots: Sequence[int], solver: str = "hopcroft_karp"):
        slots = np.asarray(upload_slots, dtype=np.int64)
        if slots.ndim != 1 or slots.size == 0:
            raise ValueError("upload_slots must be a non-empty 1-D sequence")
        if np.any(slots < 0):
            raise ValueError("upload_slots must be non-negative")
        if solver != "hopcroft_karp" and solver not in FLOW_SOLVERS:
            known = ", ".join(["hopcroft_karp"] + sorted(FLOW_SOLVERS))
            raise ValueError(f"solver must be one of {known}, got {solver!r}")
        self._slots = slots
        self._solver = solver

    @property
    def upload_slots(self) -> np.ndarray:
        """Per-box stripe-upload capacity used for the matching."""
        return self._slots

    @property
    def solver(self) -> str:
        """Name of the matching kernel in use."""
        return self._solver

    def update_upload_slots(self, upload_slots: Sequence[int]) -> None:
        """Replace the per-box capacities (live capacity reconfiguration).

        The new vector may be longer than the old one (boxes joined) but
        never shorter; it takes effect from the next :meth:`match` call.
        """
        slots = np.asarray(upload_slots, dtype=np.int64)
        if slots.ndim != 1 or slots.size < self._slots.size:
            raise ValueError(
                "upload_slots must be a 1-D sequence at least as long as the "
                f"current population ({self._slots.size})"
            )
        if np.any(slots < 0):
            raise ValueError("upload_slots must be non-negative")
        self._slots = slots

    def match(
        self,
        requests: RequestSet,
        possession: PossessionIndex,
        current_time: int,
        busy_slots: Optional[Sequence[int]] = None,
        warm_start: Optional[Sequence[int]] = None,
    ) -> ConnectionMatching:
        """Wire the requests of round ``current_time``.

        ``busy_slots`` optionally gives, per box, the number of upload
        slots already consumed by connections carried over from previous
        rounds (ongoing stripe transfers); they are subtracted from the
        capacity available to new requests.

        ``warm_start`` optionally seeds the matching with a previous
        round's request→box assignment (``-1`` = unmatched).  Stale pairs
        (departed boxes, evicted caches, exhausted capacity) are dropped
        during validation, so the result is always a maximum matching of
        the *current* instance; only the solve gets cheaper.  Ignored by
        the max-flow oracle solvers.
        """
        n = self._slots.size
        capacities = self._slots.copy()
        if busy_slots is not None:
            busy = np.asarray(busy_slots, dtype=np.int64)
            if busy.shape != capacities.shape:
                raise ValueError("busy_slots must have one entry per box")
            if np.any(busy < 0):
                raise ValueError("busy_slots must be non-negative")
            capacities = np.maximum(capacities - busy, 0)

        request_list = list(requests)
        if not request_list:
            return ConnectionMatching(
                feasible=True,
                assignment=np.empty(0, dtype=np.int64),
                matched=0,
                request_set=requests,
                obstruction_witness=None,
                box_load=np.zeros(n, dtype=np.int64),
                capacities=capacities,
            )

        if self._solver in FLOW_SOLVERS:
            edges: List[Tuple[int, int]] = []
            for idx, request in enumerate(request_list):
                for box in possession.servers_for(request, current_time):
                    if box == request.box_id:
                        # A box never serves its own request: it needs the data.
                        continue
                    edges.append((idx, int(box)))
            result: BMatchingResult = solve_b_matching(
                num_left=len(request_list),
                num_right=n,
                edges=edges,
                right_capacities=capacities.tolist(),
                method=self._solver,
            )
            assignment = result.assignment
            feasible, matched = result.feasible, result.matched
            witness = result.unsatisfied_witness
        else:
            if warm_start is not None and len(warm_start) != len(request_list):
                raise ValueError("warm_start must have one entry per request")
            indptr, indices = possession.adjacency_for(request_list, current_time)
            hk = hopcroft_karp_matching(
                num_left=len(request_list),
                num_right=n,
                indptr=indptr,
                indices=indices,
                right_capacities=capacities.tolist(),
                initial_assignment=warm_start,
            )
            assignment = hk.assignment
            feasible, matched = hk.feasible, hk.matched
            witness = hk.unsatisfied_witness

        served = assignment[assignment >= 0]
        box_load = np.bincount(served, minlength=n).astype(np.int64)
        return ConnectionMatching(
            feasible=feasible,
            assignment=assignment,
            matched=matched,
            request_set=requests,
            obstruction_witness=witness,
            box_load=box_load,
            capacities=capacities,
        )


def check_feasibility_hall(
    requests: RequestSet,
    possession: PossessionIndex,
    uploads: Sequence[float],
    num_stripes_per_video: int,
    current_time: int,
    max_subset_size: Optional[int] = None,
) -> Tuple[bool, Optional[Tuple[int, ...]]]:
    """Direct check of Lemma 1: ``∀ X ⊆ Y, U_{B(X)} ≥ |X|/c``.

    Exhaustive over subsets of the request set (exponential); only usable
    on small instances, where it serves as an oracle for the flow-based
    matcher.  Returns ``(feasible, witness)`` where ``witness`` is a
    violating subset of request indices (or ``None``).
    """
    uploads_arr = np.asarray(uploads, dtype=np.float64)
    request_list = list(requests)
    c = check_positive_integer(num_stripes_per_video, "num_stripes_per_video")
    neighbourhoods: List[Set[int]] = []
    for request in request_list:
        servers = possession.servers_for(request, current_time)
        servers.discard(request.box_id)
        neighbourhoods.append(servers)
    limit = len(request_list) if max_subset_size is None else min(
        max_subset_size, len(request_list)
    )
    for size in range(1, limit + 1):
        for subset in combinations(range(len(request_list)), size):
            neighbourhood: Set[int] = set()
            for idx in subset:
                neighbourhood |= neighbourhoods[idx]
            capacity = float(uploads_arr[list(neighbourhood)].sum()) if neighbourhood else 0.0
            if capacity + 1e-12 < size / c:
                return False, subset
    return True, None
