"""Connection matching: requests, possession index and Lemma 1 feasibility.

At every round ``t`` the set of *stripe requests* not yet wired,
``Y = {(s_1, t_1, b_1), …, (s_p, t_p, b_p)}``, must be matched against the
boxes that possess the corresponding data so that each box ``b`` serves at
most ``⌊u_b·c⌋`` stripes (Section 2.2).  Wiring connections according to
such a matching serves every request at round ``t+1``, since each stripe
has rate ``1/c``.

This module provides:

* :class:`StripeRequest` / :class:`RequestSet` — the request multiset ``Y``;
* :class:`PossessionIndex` — the "who possesses what" relation ``B(·)``,
  combining the static allocation with playback caches and relay caches;
* :class:`ConnectionMatcher` — builds the bipartite graph ``G`` from ``Y``
  to the boxes and solves the connection matching through max flow;
* :func:`check_feasibility_hall` — the direct (exponential) form of
  Lemma 1's condition ``∀X ⊆ Y : U_{B(X)} ≥ |X|/c``, used on small
  instances to validate the flow-based answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.allocation import Allocation
from repro.core.video import StripeId
from repro.flow.bipartite import BMatchingResult, solve_b_matching
from repro.util.validation import check_non_negative_integer, check_positive_integer

__all__ = [
    "StripeRequest",
    "RequestSet",
    "PossessionIndex",
    "ConnectionMatching",
    "ConnectionMatcher",
    "check_feasibility_hall",
]


@dataclass(frozen=True, order=True)
class StripeRequest:
    """A request ``(s_i, t_i, b_i)`` for stripe ``s_i`` made by box ``b_i`` at time ``t_i``."""

    stripe_id: int
    request_time: int
    box_id: int
    #: Whether this is a preloading request (vs a postponed one); only used
    #: for reporting, the matching treats both identically.
    is_preload: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        check_non_negative_integer(self.stripe_id, "stripe_id")
        check_non_negative_integer(self.request_time, "request_time")
        check_non_negative_integer(self.box_id, "box_id")


class RequestSet:
    """The multiset ``Y`` of stripe requests pending at a given round."""

    def __init__(self, requests: Iterable[StripeRequest] = ()):
        self._requests: List[StripeRequest] = list(requests)

    def add(self, request: StripeRequest) -> None:
        """Append a request to the multiset."""
        self._requests.append(request)

    def extend(self, requests: Iterable[StripeRequest]) -> None:
        """Append several requests."""
        self._requests.extend(requests)

    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self):
        return iter(self._requests)

    def __getitem__(self, index: int) -> StripeRequest:
        return self._requests[index]

    @property
    def requests(self) -> Tuple[StripeRequest, ...]:
        """The requests as an immutable tuple."""
        return tuple(self._requests)

    def stripe_multiset(self) -> List[int]:
        """The multiset ``S(Y)`` of requested stripe identifiers."""
        return [r.stripe_id for r in self._requests]

    def distinct_stripes(self) -> Set[int]:
        """The set of pairwise distinct requested stripes."""
        return {r.stripe_id for r in self._requests}

    def by_video(self, num_stripes_per_video: int) -> Dict[int, List[StripeRequest]]:
        """Group requests by the video their stripe belongs to."""
        check_positive_integer(num_stripes_per_video, "num_stripes_per_video")
        groups: Dict[int, List[StripeRequest]] = {}
        for request in self._requests:
            groups.setdefault(request.stripe_id // num_stripes_per_video, []).append(request)
        return groups

    def __repr__(self) -> str:  # pragma: no cover
        return f"RequestSet(size={len(self._requests)}, distinct={len(self.distinct_stripes())})"


class PossessionIndex:
    """The relation "box ``b`` possesses the data needed by request ``x``".

    A box possesses the data needed by request ``(s, t_i, b_i)`` at the
    current round ``t`` when any of the following holds (Section 2.2 and
    the relay extension of Section 4):

    * it statically stores a replica of ``s`` (random allocation);
    * it caches ``s`` as the relay of a poor box;
    * it itself requested ``s`` at some ``t_j`` with ``t − T ≤ t_j < t_i``
      (playback cache: it is further ahead in the same stripe).
    """

    def __init__(self, allocation: Allocation, cache_window: int):
        self._allocation = allocation
        self._window = check_positive_integer(cache_window, "cache_window")
        # stripe_id -> list of (box_id, request_time) of boxes downloading it.
        self._swarm: Dict[int, List[Tuple[int, int]]] = {}
        # stripe_id -> set of boxes relay-caching it (Section 4).
        self._relays: Dict[int, Set[int]] = {}

    @property
    def allocation(self) -> Allocation:
        """The underlying static allocation."""
        return self._allocation

    @property
    def cache_window(self) -> int:
        """Playback-cache window ``T`` in rounds."""
        return self._window

    # ------------------------------------------------------------------ #
    # Dynamic state maintenance
    # ------------------------------------------------------------------ #
    def record_download(self, stripe_id: StripeId, box_id: int, time: int) -> None:
        """Record that ``box_id`` requested/downloads ``stripe_id`` starting at ``time``."""
        self._swarm.setdefault(int(stripe_id), []).append((int(box_id), int(time)))

    def record_relay_cache(self, stripe_id: StripeId, box_id: int) -> None:
        """Record that ``box_id`` relay-caches ``stripe_id`` for a poor box."""
        self._relays.setdefault(int(stripe_id), set()).add(int(box_id))

    def evict_before(self, current_time: int) -> None:
        """Drop cache entries older than ``current_time − T``."""
        horizon = current_time - self._window
        stale: List[int] = []
        for stripe_id, entries in self._swarm.items():
            kept = [(b, t) for (b, t) in entries if t >= horizon]
            if kept:
                self._swarm[stripe_id] = kept
            else:
                stale.append(stripe_id)
        for stripe_id in stale:
            del self._swarm[stripe_id]

    # ------------------------------------------------------------------ #
    # Possession queries
    # ------------------------------------------------------------------ #
    def cache_servers(
        self, stripe_id: StripeId, request_time: int, current_time: int
    ) -> Set[int]:
        """Boxes able to serve ``stripe_id`` from their playback cache."""
        horizon = current_time - self._window
        entries = self._swarm.get(int(stripe_id), [])
        return {b for (b, t_j) in entries if horizon <= t_j < request_time}

    def servers_for(self, request: StripeRequest, current_time: int) -> Set[int]:
        """The neighbourhood ``B(x)`` of a request in the bipartite graph ``G``."""
        servers: Set[int] = set(
            int(b) for b in self._allocation.boxes_with_stripe(request.stripe_id)
        )
        servers |= self._relays.get(int(request.stripe_id), set())
        servers |= self.cache_servers(request.stripe_id, request.request_time, current_time)
        return servers

    def swarm_size(self, video_id: int, num_stripes_per_video: int) -> int:
        """Number of distinct boxes currently downloading any stripe of a video."""
        base = video_id * num_stripes_per_video
        boxes: Set[int] = set()
        for stripe_id in range(base, base + num_stripes_per_video):
            boxes.update(b for (b, _t) in self._swarm.get(stripe_id, []))
        return len(boxes)


@dataclass(frozen=True)
class ConnectionMatching:
    """Result of wiring the requests of one round.

    Attributes
    ----------
    feasible:
        Whether every request could be assigned a server.
    assignment:
        For each request (in the order of the request set), the box serving
        it, or ``-1`` when infeasible and left unmatched.
    matched:
        Number of matched requests.
    request_set:
        The request multiset that was matched.
    obstruction_witness:
        When infeasible, indices (into the request set) of a subset ``X``
        violating the Lemma 1 condition ``U_{B(X)} ≥ |X|/c``.
    box_load:
        Per-box number of stripes served under the returned assignment.
    """

    feasible: bool
    assignment: np.ndarray
    matched: int
    request_set: RequestSet
    obstruction_witness: Optional[Tuple[int, ...]]
    box_load: np.ndarray


class ConnectionMatcher:
    """Builds the bipartite graph ``G`` and solves the connection matching.

    Parameters
    ----------
    upload_slots:
        Per-box number of stripes uploadable per round, ``⌊u_b·c⌋``,
        possibly already reduced by statically reserved relay capacity
        (Section 4).
    """

    def __init__(self, upload_slots: Sequence[int]):
        slots = np.asarray(upload_slots, dtype=np.int64)
        if slots.ndim != 1 or slots.size == 0:
            raise ValueError("upload_slots must be a non-empty 1-D sequence")
        if np.any(slots < 0):
            raise ValueError("upload_slots must be non-negative")
        self._slots = slots

    @property
    def upload_slots(self) -> np.ndarray:
        """Per-box stripe-upload capacity used for the matching."""
        return self._slots

    def match(
        self,
        requests: RequestSet,
        possession: PossessionIndex,
        current_time: int,
        busy_slots: Optional[Sequence[int]] = None,
    ) -> ConnectionMatching:
        """Wire the requests of round ``current_time``.

        ``busy_slots`` optionally gives, per box, the number of upload
        slots already consumed by connections carried over from previous
        rounds (ongoing stripe transfers); they are subtracted from the
        capacity available to new requests.
        """
        n = self._slots.size
        capacities = self._slots.copy()
        if busy_slots is not None:
            busy = np.asarray(busy_slots, dtype=np.int64)
            if busy.shape != capacities.shape:
                raise ValueError("busy_slots must have one entry per box")
            if np.any(busy < 0):
                raise ValueError("busy_slots must be non-negative")
            capacities = np.maximum(capacities - busy, 0)

        request_list = list(requests)
        if not request_list:
            return ConnectionMatching(
                feasible=True,
                assignment=np.empty(0, dtype=np.int64),
                matched=0,
                request_set=requests,
                obstruction_witness=None,
                box_load=np.zeros(n, dtype=np.int64),
            )

        edges: List[Tuple[int, int]] = []
        for idx, request in enumerate(request_list):
            for box in possession.servers_for(request, current_time):
                if box == request.box_id:
                    # A box never serves its own request: it needs the data.
                    continue
                edges.append((idx, int(box)))

        result: BMatchingResult = solve_b_matching(
            num_left=len(request_list),
            num_right=n,
            edges=edges,
            right_capacities=capacities.tolist(),
        )
        box_load = np.zeros(n, dtype=np.int64)
        for box in result.assignment:
            if box >= 0:
                box_load[box] += 1
        return ConnectionMatching(
            feasible=result.feasible,
            assignment=result.assignment,
            matched=result.matched,
            request_set=requests,
            obstruction_witness=result.unsatisfied_witness,
            box_load=box_load,
        )


def check_feasibility_hall(
    requests: RequestSet,
    possession: PossessionIndex,
    uploads: Sequence[float],
    num_stripes_per_video: int,
    current_time: int,
    max_subset_size: Optional[int] = None,
) -> Tuple[bool, Optional[Tuple[int, ...]]]:
    """Direct check of Lemma 1: ``∀ X ⊆ Y, U_{B(X)} ≥ |X|/c``.

    Exhaustive over subsets of the request set (exponential); only usable
    on small instances, where it serves as an oracle for the flow-based
    matcher.  Returns ``(feasible, witness)`` where ``witness`` is a
    violating subset of request indices (or ``None``).
    """
    uploads_arr = np.asarray(uploads, dtype=np.float64)
    request_list = list(requests)
    c = check_positive_integer(num_stripes_per_video, "num_stripes_per_video")
    neighbourhoods: List[Set[int]] = []
    for request in request_list:
        servers = possession.servers_for(request, current_time)
        servers.discard(request.box_id)
        neighbourhoods.append(servers)
    limit = len(request_list) if max_subset_size is None else min(
        max_subset_size, len(request_list)
    )
    for size in range(1, limit + 1):
        for subset in combinations(range(len(request_list)), size):
            neighbourhood: Set[int] = set()
            for idx in subset:
                neighbourhood |= neighbourhoods[idx]
            capacity = float(uploads_arr[list(neighbourhood)].sum()) if neighbourhood else 0.0
            if capacity + 1e-12 < size / c:
                return False, subset
    return True, None
