"""Connection matching: requests, possession index and Lemma 1 feasibility.

At every round ``t`` the set of *stripe requests* not yet wired,
``Y = {(s_1, t_1, b_1), …, (s_p, t_p, b_p)}``, must be matched against the
boxes that possess the corresponding data so that each box ``b`` serves at
most ``⌊u_b·c⌋`` stripes (Section 2.2).  Wiring connections according to
such a matching serves every request at round ``t+1``, since each stripe
has rate ``1/c``.

This module provides:

* :class:`StripeRequest` / :class:`RequestSet` — the request multiset ``Y``;
* :class:`PossessionIndex` — the "who possesses what" relation ``B(·)``,
  combining the static allocation with playback caches and relay caches;
* :class:`ConnectionMatcher` — builds the bipartite graph ``G`` from ``Y``
  to the boxes and solves the connection matching through max flow;
* :func:`check_feasibility_hall` — the direct (exponential) form of
  Lemma 1's condition ``∀X ⊆ Y : U_{B(X)} ≥ |X|/c``, used on small
  instances to validate the flow-based answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.allocation import Allocation
from repro.core.video import StripeId
from repro.flow.bipartite import BMatchingResult, FLOW_SOLVERS, solve_b_matching
from repro.flow.hopcroft_karp import AugmentationBudgetExceeded, hopcroft_karp_matching
from repro.util.validation import check_non_negative_integer, check_positive_integer

__all__ = [
    "StripeRequest",
    "RequestSet",
    "ArrayRequestSet",
    "PossessionIndex",
    "ConnectionMatching",
    "ConnectionMatcher",
    "check_feasibility_hall",
]


@dataclass(frozen=True, order=True)
class StripeRequest:
    """A request ``(s_i, t_i, b_i)`` for stripe ``s_i`` made by box ``b_i`` at time ``t_i``."""

    stripe_id: int
    request_time: int
    box_id: int
    #: Whether this is a preloading request (vs a postponed one); only used
    #: for reporting, the matching treats both identically.
    is_preload: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        check_non_negative_integer(self.stripe_id, "stripe_id")
        check_non_negative_integer(self.request_time, "request_time")
        check_non_negative_integer(self.box_id, "box_id")


class RequestSet:
    """The multiset ``Y`` of stripe requests pending at a given round."""

    def __init__(self, requests: Iterable[StripeRequest] = ()):
        self._requests: List[StripeRequest] = list(requests)

    def add(self, request: StripeRequest) -> None:
        """Append a request to the multiset."""
        self._requests.append(request)

    def extend(self, requests: Iterable[StripeRequest]) -> None:
        """Append several requests."""
        self._requests.extend(requests)

    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self):
        return iter(self._requests)

    def __getitem__(self, index: int) -> StripeRequest:
        return self._requests[index]

    @property
    def requests(self) -> Tuple[StripeRequest, ...]:
        """The requests as an immutable tuple."""
        return tuple(self._requests)

    def stripe_multiset(self) -> List[int]:
        """The multiset ``S(Y)`` of requested stripe identifiers."""
        return [r.stripe_id for r in self._requests]

    def distinct_stripes(self) -> Set[int]:
        """The set of pairwise distinct requested stripes."""
        return {r.stripe_id for r in self._requests}

    def by_video(self, num_stripes_per_video: int) -> Dict[int, List[StripeRequest]]:
        """Group requests by the video their stripe belongs to."""
        check_positive_integer(num_stripes_per_video, "num_stripes_per_video")
        groups: Dict[int, List[StripeRequest]] = {}
        for request in self._requests:
            groups.setdefault(request.stripe_id // num_stripes_per_video, []).append(request)
        return groups

    def __repr__(self) -> str:  # pragma: no cover
        return f"RequestSet(size={len(self._requests)}, distinct={len(self.distinct_stripes())})"


_EMPTY_INT64 = np.empty(0, dtype=np.int64)


class ArrayRequestSet(RequestSet):
    """A :class:`RequestSet` view over struct-of-arrays request fields.

    The engine's hot path keeps requests as parallel NumPy arrays (stripe,
    request time, box, preload flag) and only materializes
    :class:`StripeRequest` objects when an observer, a trace record or a
    witness actually needs them.  All :class:`RequestSet` queries work; the
    multiset is immutable (``add``/``extend`` raise), since the arrays are
    shared with the engine's bookkeeping.
    """

    def __init__(
        self,
        stripe_ids: np.ndarray,
        request_times: np.ndarray,
        box_ids: np.ndarray,
        preload_flags: Optional[np.ndarray] = None,
    ):
        self._stripes = np.asarray(stripe_ids, dtype=np.int64)
        self._times = np.asarray(request_times, dtype=np.int64)
        self._boxes = np.asarray(box_ids, dtype=np.int64)
        if self._stripes.shape != self._times.shape or self._stripes.shape != self._boxes.shape:
            raise ValueError("request field arrays must have identical shapes")
        if preload_flags is None:
            preload_flags = np.zeros(self._stripes.size, dtype=bool)
        self._preload = np.asarray(preload_flags, dtype=bool)
        self._materialized: Optional[List[StripeRequest]] = None

    # The base-class helpers read ``self._requests``; materialize lazily.
    @property
    def _requests(self) -> List[StripeRequest]:
        if self._materialized is None:
            self._materialized = [
                StripeRequest(
                    stripe_id=int(s), request_time=int(t), box_id=int(b), is_preload=bool(p)
                )
                for s, t, b, p in zip(
                    self._stripes.tolist(),
                    self._times.tolist(),
                    self._boxes.tolist(),
                    self._preload.tolist(),
                )
            ]
        return self._materialized

    @property
    def stripe_id_array(self) -> np.ndarray:
        """Per-request stripe identifiers (shared, do not mutate)."""
        return self._stripes

    @property
    def request_time_array(self) -> np.ndarray:
        """Per-request issue times (shared, do not mutate)."""
        return self._times

    @property
    def box_id_array(self) -> np.ndarray:
        """Per-request requesting boxes (shared, do not mutate)."""
        return self._boxes

    def add(self, request: StripeRequest) -> None:
        raise TypeError("ArrayRequestSet is immutable")

    def extend(self, requests: Iterable[StripeRequest]) -> None:
        raise TypeError("ArrayRequestSet is immutable")

    def __len__(self) -> int:
        return int(self._stripes.size)

    def __getitem__(self, index: int) -> StripeRequest:
        if self._materialized is not None:
            return self._materialized[index]
        # Single-element access (witness extraction) without materializing
        # the whole multiset.
        if isinstance(index, (int, np.integer)):
            i = int(index)
            return StripeRequest(
                stripe_id=int(self._stripes[i]),
                request_time=int(self._times[i]),
                box_id=int(self._boxes[i]),
                is_preload=bool(self._preload[i]),
            )
        return self._requests[index]

    def stripe_multiset(self) -> List[int]:
        return self._stripes.tolist()

    def distinct_stripes(self) -> Set[int]:
        return set(self._stripes.tolist())


class _DownloadLog:
    """Global (time-ordered) playback-cache log, struct-of-arrays.

    Every ``record_download`` appends one ``(stripe, box, time)`` entry;
    eviction advances a head offset in O(expired) because the engine
    appends in non-decreasing time order.  Adjacency queries go through a
    per-generation *sorted view* (stable-sorted by stripe, hence sorted by
    ``(stripe, time, arrival)``), which turns the whole round's
    playback-cache gather into a pair of ``searchsorted`` calls.
    Out-of-order appends (exercised by tests, never by the simulator) flip
    a flag; eviction then compacts and re-sorts the live segment by time,
    matching the old per-stripe ring-buffer semantics.
    """

    __slots__ = (
        "stripes",
        "boxes",
        "times",
        "head",
        "tail",
        "sorted",
        "_view_stripes",
        "_view_boxes",
        "_view_times",
        "_view_stale",
    )

    def __init__(self):
        self.stripes = np.empty(64, dtype=np.int64)
        self.boxes = np.empty(64, dtype=np.int64)
        self.times = np.empty(64, dtype=np.int64)
        self.head = 0
        self.tail = 0
        self.sorted = True
        self._view_stripes: np.ndarray = _EMPTY_INT64
        self._view_boxes: np.ndarray = _EMPTY_INT64
        self._view_times: np.ndarray = _EMPTY_INT64
        self._view_stale = True

    def __len__(self) -> int:
        return self.tail - self.head

    def __getstate__(self):
        live = slice(self.head, self.tail)
        return (
            self.stripes[live].copy(),
            self.boxes[live].copy(),
            self.times[live].copy(),
            self.sorted,
        )

    def __setstate__(self, state):
        stripes, boxes, times, is_sorted = state
        self.stripes, self.boxes, self.times = stripes, boxes, times
        self.head, self.tail = 0, stripes.size
        self.sorted = is_sorted
        self._view_stripes = _EMPTY_INT64
        self._view_boxes = _EMPTY_INT64
        self._view_times = _EMPTY_INT64
        self._view_stale = True

    def append(self, stripe: int, box: int, time: int) -> None:
        if self.tail == self.stripes.size:
            self._grow()
        if self.tail > self.head and time < self.times[self.tail - 1]:
            self.sorted = False
        self.stripes[self.tail] = stripe
        self.boxes[self.tail] = box
        self.times[self.tail] = time
        self.tail += 1
        self._view_stale = True

    def extend(self, stripes: np.ndarray, boxes: np.ndarray, time: int) -> None:
        """Append a block of entries sharing one time (the engine's round)."""
        count = int(stripes.size)
        if count == 0:
            return
        while self.tail + count > self.stripes.size:
            self._grow()
        if self.tail > self.head and time < self.times[self.tail - 1]:
            self.sorted = False
        lo, hi = self.tail, self.tail + count
        self.stripes[lo:hi] = stripes
        self.boxes[lo:hi] = boxes
        self.times[lo:hi] = time
        self.tail = hi
        self._view_stale = True

    def _grow(self) -> None:
        live = self.tail - self.head
        if self.head > 0 and live <= self.stripes.size // 2:
            # Enough slack at the head: compact instead of reallocating.
            for arr in (self.stripes, self.boxes, self.times):
                arr[:live] = arr[self.head: self.tail]
        else:
            new_size = max(64, 2 * self.stripes.size)
            for name in ("stripes", "boxes", "times"):
                old = getattr(self, name)
                new = np.empty(new_size, dtype=np.int64)
                new[:live] = old[self.head: self.tail]
                setattr(self, name, new)
        self.head, self.tail = 0, live

    def evict_before(self, horizon: int) -> None:
        """Drop every live entry with time < ``horizon``."""
        if self.head == self.tail:
            return
        if self.sorted:
            live_times = self.times[self.head: self.tail]
            advance = int(np.searchsorted(live_times, horizon, side="left"))
            if advance:
                self.head += advance
                self._view_stale = True
            if self.head > 4096 and self.head > (self.tail - self.head):
                self._grow()  # reclaim the dead prefix
        else:
            live = slice(self.head, self.tail)
            times = self.times[live]
            order = np.argsort(times, kind="stable")
            keep = order[times[order] >= horizon]
            kept = keep.size
            self.stripes[:kept] = self.stripes[live][keep]
            self.boxes[:kept] = self.boxes[live][keep]
            self.times[:kept] = self.times[live][keep]
            self.head, self.tail = 0, kept
            self.sorted = True
            self._view_stale = True

    def sorted_view(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Live entries stable-sorted by stripe: ``(stripes, times, boxes)``.

        Within a stripe the order is by time then arrival — exactly the
        order the old per-stripe ring buffers exposed.
        """
        if self._view_stale:
            live = slice(self.head, self.tail)
            stripes = self.stripes[live]
            if self.sorted:
                order = np.argsort(stripes, kind="stable")
            else:
                by_time = np.argsort(self.times[live], kind="stable")
                by_stripe = np.argsort(stripes[by_time], kind="stable")
                order = by_time[by_stripe]
            self._view_stripes = stripes[order]
            self._view_times = self.times[live][order]
            self._view_boxes = self.boxes[live][order]
            self._view_stale = False
        return self._view_stripes, self._view_times, self._view_boxes

    def live_stripes(self) -> np.ndarray:
        """Stripe column of the live segment (unsorted, may repeat)."""
        return self.stripes[self.head: self.tail]

    def live_boxes(self) -> np.ndarray:
        """Box column of the live segment (unsorted, may repeat)."""
        return self.boxes[self.head: self.tail]


class PossessionIndex:
    """The relation "box ``b`` possesses the data needed by request ``x``".

    A box possesses the data needed by request ``(s, t_i, b_i)`` at the
    current round ``t`` when any of the following holds (Section 2.2 and
    the relay extension of Section 4):

    * it statically stores a replica of ``s`` (random allocation);
    * it caches ``s`` as the relay of a poor box;
    * it itself requested ``s`` at some ``t_j`` with ``t − T ≤ t_j < t_i``
      (playback cache: it is further ahead in the same stripe).

    The static stripe→boxes relation is precomputed once from the
    allocation as a CSR (``indptr``/``indices``) index; the dynamic caches
    live in one global struct-of-arrays download log (O(expired)
    eviction, whole-round batched queries).  The batched
    :meth:`adjacency_for` emits the whole round's bipartite adjacency as
    CSR arrays, which is what the Hopcroft–Karp matching kernel consumes.
    """

    def __init__(self, allocation: Allocation, cache_window: int):
        self._allocation = allocation
        self._window = check_positive_integer(cache_window, "cache_window")
        # Static stripe -> sorted distinct holder boxes, in CSR form.
        self._rebuild_static()
        # Global struct-of-arrays log of (stripe, box, time) downloads.
        self._log = _DownloadLog()
        # stripe_id -> set of boxes relay-caching it (Section 4).
        self._relays: Dict[int, Set[int]] = {}
        self._relay_arrays: Dict[int, np.ndarray] = {}

    @property
    def allocation(self) -> Allocation:
        """The underlying static allocation."""
        return self._allocation

    @property
    def cache_window(self) -> int:
        """Playback-cache window ``T`` in rounds."""
        return self._window

    def _rebuild_static(self) -> None:
        allocation = self._allocation
        k = allocation.replicas_per_stripe
        num_stripes = allocation.num_stripes
        if num_stripes and k:
            grid = np.sort(allocation.replica_box.reshape(num_stripes, k), axis=1)
            keep = np.ones_like(grid, dtype=bool)
            if k > 1:
                keep[:, 1:] = grid[:, 1:] != grid[:, :-1]
            counts = keep.sum(axis=1)
            self._static_indptr = np.zeros(num_stripes + 1, dtype=np.int64)
            np.cumsum(counts, out=self._static_indptr[1:])
            self._static_boxes = grid[keep].astype(np.int64)
        else:
            self._static_indptr = np.zeros(num_stripes + 1, dtype=np.int64)
            self._static_boxes = _EMPTY_INT64

    def set_allocation(self, allocation: Allocation) -> None:
        """Swap the allocation reference without rebuilding the static index.

        Only valid when the replica placement is unchanged (e.g. the
        population grew around the same ``replica_box`` array); use
        :meth:`refresh_allocation` after placements changed.
        """
        if allocation.replica_box is not self._allocation.replica_box and not (
            allocation.replica_box.shape == self._allocation.replica_box.shape
            and np.array_equal(allocation.replica_box, self._allocation.replica_box)
        ):
            raise ValueError(
                "set_allocation requires an identical replica placement; "
                "use refresh_allocation for changed placements"
            )
        self._allocation = allocation

    def refresh_allocation(self, allocation: Allocation) -> None:
        """Adopt a new allocation, rebuilding the static stripe→boxes index.

        The dynamic state — playback-cache swarms, eviction timeline and
        relay caches — is preserved, which is what the live ``add_videos``
        reconfiguration needs: existing downloads keep serving while the
        static index grows.
        """
        self._allocation = allocation
        self._rebuild_static()

    # ------------------------------------------------------------------ #
    # Dynamic state maintenance
    # ------------------------------------------------------------------ #
    def record_download(self, stripe_id: StripeId, box_id: int, time: int) -> None:
        """Record that ``box_id`` requested/downloads ``stripe_id`` starting at ``time``."""
        self._log.append(int(stripe_id), int(box_id), int(time))

    def record_downloads(
        self, stripe_ids: np.ndarray, box_ids: np.ndarray, time: int
    ) -> None:
        """Record a block of downloads all starting at round ``time`` (hot path)."""
        self._log.extend(
            np.asarray(stripe_ids, dtype=np.int64),
            np.asarray(box_ids, dtype=np.int64),
            int(time),
        )

    def record_relay_cache(self, stripe_id: StripeId, box_id: int) -> None:
        """Record that ``box_id`` relay-caches ``stripe_id`` for a poor box."""
        stripe_id = int(stripe_id)
        self._relays.setdefault(stripe_id, set()).add(int(box_id))
        self._relay_arrays.pop(stripe_id, None)

    def evict_before(self, current_time: int) -> None:
        """Drop cache entries older than ``current_time − T``."""
        self._log.evict_before(current_time - self._window)

    # ------------------------------------------------------------------ #
    # Possession queries
    # ------------------------------------------------------------------ #
    def static_servers(self, stripe_id: StripeId) -> np.ndarray:
        """Sorted distinct boxes statically holding ``stripe_id`` (CSR slice)."""
        stripe_id = int(stripe_id)
        return self._static_boxes[
            self._static_indptr[stripe_id]: self._static_indptr[stripe_id + 1]
        ]

    def _cache_boxes_array(
        self, stripe_id: int, request_time: int, current_time: int
    ) -> np.ndarray:
        """Playback-cache servers as an array slice (may contain duplicates)."""
        if not len(self._log):
            return _EMPTY_INT64
        stripes, times, boxes = self._log.sorted_view()
        stripe_id = int(stripe_id)
        lo = int(np.searchsorted(stripes, stripe_id, side="left"))
        hi = int(np.searchsorted(stripes, stripe_id, side="right"))
        if lo == hi:
            return _EMPTY_INT64
        horizon = current_time - self._window
        segment = times[lo:hi]
        a = int(np.searchsorted(segment, horizon, side="left"))
        b = int(np.searchsorted(segment, request_time, side="left"))
        return boxes[lo + a: lo + b]

    def _relay_array(self, stripe_id: int) -> np.ndarray:
        relays = self._relays.get(stripe_id)
        if not relays:
            return _EMPTY_INT64
        cached = self._relay_arrays.get(stripe_id)
        if cached is None or cached.size != len(relays):
            cached = np.fromiter(relays, dtype=np.int64, count=len(relays))
            self._relay_arrays[stripe_id] = cached
        return cached

    def cache_servers(
        self, stripe_id: StripeId, request_time: int, current_time: int
    ) -> Set[int]:
        """Boxes able to serve ``stripe_id`` from their playback cache."""
        return {
            int(b)
            for b in self._cache_boxes_array(int(stripe_id), request_time, current_time)
        }

    def servers_for(self, request: StripeRequest, current_time: int) -> Set[int]:
        """The neighbourhood ``B(x)`` of a request in the bipartite graph ``G``."""
        servers: Set[int] = set(self.static_servers(request.stripe_id).tolist())
        servers |= self._relays.get(int(request.stripe_id), set())
        servers |= self.cache_servers(request.stripe_id, request.request_time, current_time)
        return servers

    def adjacency_for(
        self,
        requests: Sequence[StripeRequest],
        current_time: int,
        exclude_self: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """CSR adjacency (requests → candidate server boxes) for one round.

        Row ``i`` lists the boxes that possess the data of ``requests[i]``
        — excluding the requesting box itself unless ``exclude_self`` is
        disabled.  Rows may contain duplicates (a box can hold a stripe
        statically *and* cache it); the matching kernel tolerates them.
        The output feeds
        :func:`repro.flow.hopcroft_karp.hopcroft_karp_matching` directly.
        """
        num = len(requests)
        if num == 0:
            return np.zeros(1, dtype=np.int64), _EMPTY_INT64
        # Subclasses predating the batched API may override the set-based
        # ``servers_for``/``cache_servers`` only; honour their overrides
        # through the (slower) set-driven fallback.
        set_override = type(self).servers_for is not PossessionIndex.servers_for or (
            type(self).cache_servers is not PossessionIndex.cache_servers
            and type(self)._cache_boxes_array is PossessionIndex._cache_boxes_array
        )
        if set_override:
            return self._adjacency_from_sets(requests, current_time, exclude_self)

        if isinstance(requests, ArrayRequestSet):
            stripes = requests.stripe_id_array
            boxes = requests.box_id_array
            times = requests.request_time_array
        else:
            stripes = np.fromiter(
                (r.stripe_id for r in requests), dtype=np.int64, count=num
            )
            boxes = np.fromiter((r.box_id for r in requests), dtype=np.int64, count=num)
            times = np.fromiter(
                (r.request_time for r in requests), dtype=np.int64, count=num
            )
        # Static holders, gathered for all requests at once: row i is the
        # CSR slice of its stripe, materialized through one fancy index.
        row_starts = self._static_indptr[stripes]
        lens = self._static_indptr[stripes + 1] - row_starts
        total = int(lens.sum())
        offsets = np.zeros(num + 1, dtype=np.int64)
        np.cumsum(lens, out=offsets[1:])
        gather = (
            np.arange(total, dtype=np.int64)
            - np.repeat(offsets[:-1], lens)
            + np.repeat(row_starts, lens)
        )
        all_vals = self._static_boxes[gather]
        all_rows = np.repeat(np.arange(num, dtype=np.int64), lens)

        # Dynamic additions (playback caches, relays).  An overridden cache
        # hook may draw on state outside the base download log, so it must
        # be consulted request by request; the default path gathers the
        # whole round's playback-cache windows with two searchsorted calls
        # on the stripe-sorted log (composite ``stripe·K + time`` keys).
        cache_hook_overridden = (
            type(self)._cache_boxes_array is not PossessionIndex._cache_boxes_array
        )
        if len(self._log) or self._relays or cache_hook_overridden:
            extra_vals: List[np.ndarray] = []
            extra_rows: List[np.ndarray] = []
            if cache_hook_overridden:
                for i, request in enumerate(requests):
                    window = self._cache_boxes_array(
                        int(stripes[i]), request.request_time, current_time
                    )
                    if window.size:
                        extra_vals.append(window)
                        extra_rows.append(np.full(window.size, i, dtype=np.int64))
            elif len(self._log):
                sorted_stripes, sorted_times, sorted_boxes = self._log.sorted_view()
                # Shift times to be non-negative so the composite keys are
                # monotone per stripe even for exotic (test-only) inputs.
                base = min(int(sorted_times.min()), 0)
                span = max(
                    int(sorted_times.max()),
                    int(times.max()) if times.size else 0,
                    current_time - self._window,
                )
                scale = span - base + 2
                keys = sorted_stripes * scale + (sorted_times - base)
                lo = max(current_time - self._window - base, 0)
                win_lo = np.searchsorted(keys, stripes * scale + lo, side="left")
                win_hi = np.searchsorted(
                    keys, stripes * scale + (times - base), side="left"
                )
                # A request issued before the horizon has an inverted
                # (empty) window: clip, as the old slice-based path did.
                counts_cache = np.maximum(win_hi - win_lo, 0)
                total_cache = int(counts_cache.sum())
                if total_cache:
                    cache_offsets = np.zeros(num + 1, dtype=np.int64)
                    np.cumsum(counts_cache, out=cache_offsets[1:])
                    gather_cache = (
                        np.arange(total_cache, dtype=np.int64)
                        - np.repeat(cache_offsets[:-1], counts_cache)
                        + np.repeat(win_lo, counts_cache)
                    )
                    cache_vals = sorted_boxes[gather_cache]
                    if not self._relays:
                        # Common case (static + caches only): both blocks
                        # are already row-major, so place them positionally
                        # instead of paying a stable sort over all edges.
                        row_counts = lens + counts_cache
                        indptr_merged = np.zeros(num + 1, dtype=np.int64)
                        np.cumsum(row_counts, out=indptr_merged[1:])
                        merged = np.empty(total + total_cache, dtype=np.int64)
                        merged[
                            np.repeat(indptr_merged[:-1], lens)
                            + (gather - np.repeat(row_starts, lens))
                        ] = all_vals
                        merged[
                            np.repeat(indptr_merged[:-1] + lens, counts_cache)
                            + (gather_cache - np.repeat(win_lo, counts_cache))
                        ] = cache_vals
                        all_vals = merged
                        all_rows = np.repeat(
                            np.arange(num, dtype=np.int64), row_counts
                        )
                        extra_vals = []
                    else:
                        extra_vals.append(cache_vals)
                        extra_rows.append(
                            np.repeat(np.arange(num, dtype=np.int64), counts_cache)
                        )
            if self._relays:
                relay_stripes = np.fromiter(
                    self._relays.keys(), dtype=np.int64, count=len(self._relays)
                )
                for i in np.flatnonzero(np.isin(stripes, relay_stripes)).tolist():
                    relay = self._relay_array(int(stripes[i]))
                    if relay.size:
                        extra_vals.append(relay)
                        extra_rows.append(np.full(relay.size, i, dtype=np.int64))
            if extra_vals:
                all_vals = np.concatenate([all_vals] + extra_vals)
                all_rows = np.concatenate([all_rows] + extra_rows)
                order = np.argsort(all_rows, kind="stable")
                all_vals = all_vals[order]
                all_rows = all_rows[order]

        if exclude_self:
            mask = all_vals != boxes[all_rows]
            if not mask.all():
                all_vals = all_vals[mask]
                all_rows = all_rows[mask]
        counts = np.bincount(all_rows, minlength=num)
        indptr = np.zeros(num + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, all_vals

    def _adjacency_from_sets(
        self,
        requests: Sequence[StripeRequest],
        current_time: int,
        exclude_self: bool,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Compatibility adjacency builder driven by :meth:`servers_for`."""
        rows: List[np.ndarray] = []
        indptr = np.zeros(len(requests) + 1, dtype=np.int64)
        for i, request in enumerate(requests):
            servers = self.servers_for(request, current_time)
            if exclude_self:
                servers.discard(request.box_id)
            row = np.fromiter(servers, dtype=np.int64, count=len(servers))
            rows.append(row)
            indptr[i + 1] = indptr[i] + row.size
        indices = np.concatenate(rows) if rows else _EMPTY_INT64
        return indptr, indices

    def swarm_size(self, video_id: int, num_stripes_per_video: int) -> int:
        """Number of distinct boxes currently downloading any stripe of a video."""
        base = video_id * num_stripes_per_video
        stripes = self._log.live_stripes()
        if not stripes.size:
            return 0
        mask = (stripes >= base) & (stripes < base + num_stripes_per_video)
        if not mask.any():
            return 0
        return int(np.unique(self._log.live_boxes()[mask]).size)


@dataclass(frozen=True)
class ConnectionMatching:
    """Result of wiring the requests of one round.

    Attributes
    ----------
    feasible:
        Whether every request could be assigned a server.
    assignment:
        For each request (in the order of the request set), the box serving
        it, or ``-1`` when infeasible and left unmatched.
    matched:
        Number of matched requests.
    request_set:
        The request multiset that was matched.
    obstruction_witness:
        When infeasible, indices (into the request set) of a subset ``X``
        violating the Lemma 1 condition ``U_{B(X)} ≥ |X|/c``.
    box_load:
        Per-box number of stripes served under the returned assignment.
    capacities:
        Effective per-box capacities the matching was solved against
        (upload slots minus any ``busy_slots``, clipped at zero) — the
        exact right-hand side of the solved instance, reused by the
        differential solver oracle.
    degraded:
        ``True`` when the primary solver ran out of its augmentation
        budget and the round was re-solved by the Dinic fallback.  The
        matching is still a maximum matching of the same instance; the
        flag only records that the fast path gave up.
    """

    feasible: bool
    assignment: np.ndarray
    matched: int
    request_set: RequestSet
    obstruction_witness: Optional[Tuple[int, ...]]
    box_load: np.ndarray
    capacities: np.ndarray
    degraded: bool = False


class ConnectionMatcher:
    """Builds the bipartite graph ``G`` and solves the connection matching.

    Parameters
    ----------
    upload_slots:
        Per-box number of stripes uploadable per round, ``⌊u_b·c⌋``,
        possibly already reduced by statically reserved relay capacity
        (Section 4).
    solver:
        ``"hopcroft_karp"`` (default) matches directly on the CSR
        adjacency emitted by :meth:`PossessionIndex.adjacency_for`;
        ``"dinic"``, ``"push_relabel"`` and ``"edmonds_karp"`` keep the
        original edge-list → max-flow reduction and serve as oracles in
        cross-validation tests and benchmarks.
    augmentation_budget:
        Optional per-round cap on the Hopcroft–Karp kernel's
        augmenting-path searches.  When the kernel exceeds it the round
        is transparently re-solved with the Dinic fallback and the
        returned matching carries ``degraded=True`` — graceful
        degradation instead of an unbounded solve.  Ignored by the
        max-flow solvers (they have no augmentation budget).
    """

    def __init__(
        self,
        upload_slots: Sequence[int],
        solver: str = "hopcroft_karp",
        augmentation_budget: Optional[int] = None,
    ):
        slots = np.asarray(upload_slots, dtype=np.int64)
        if slots.ndim != 1 or slots.size == 0:
            raise ValueError("upload_slots must be a non-empty 1-D sequence")
        if np.any(slots < 0):
            raise ValueError("upload_slots must be non-negative")
        if solver != "hopcroft_karp" and solver not in FLOW_SOLVERS:
            known = ", ".join(["hopcroft_karp"] + sorted(FLOW_SOLVERS))
            raise ValueError(f"solver must be one of {known}, got {solver!r}")
        self._slots = slots
        self._solver = solver
        self._augmentation_budget: Optional[int] = None
        self.set_augmentation_budget(augmentation_budget)

    @property
    def upload_slots(self) -> np.ndarray:
        """Per-box stripe-upload capacity used for the matching."""
        return self._slots

    @property
    def solver(self) -> str:
        """Name of the matching kernel in use."""
        return self._solver

    @property
    def augmentation_budget(self) -> Optional[int]:
        """Current per-round augmentation budget (``None`` = unlimited)."""
        return self._augmentation_budget

    def set_augmentation_budget(self, budget: Optional[int]) -> None:
        """Set (or clear, with ``None``) the per-round augmentation budget."""
        if budget is not None:
            budget = int(budget)
            if budget < 0:
                raise ValueError("augmentation_budget must be non-negative")
        self._augmentation_budget = budget

    def update_upload_slots(self, upload_slots: Sequence[int]) -> None:
        """Replace the per-box capacities (live capacity reconfiguration).

        The new vector may be longer than the old one (boxes joined) but
        never shorter; it takes effect from the next :meth:`match` call.
        """
        slots = np.asarray(upload_slots, dtype=np.int64)
        if slots.ndim != 1 or slots.size < self._slots.size:
            raise ValueError(
                "upload_slots must be a 1-D sequence at least as long as the "
                f"current population ({self._slots.size})"
            )
        if np.any(slots < 0):
            raise ValueError("upload_slots must be non-negative")
        self._slots = slots

    def match(
        self,
        requests: RequestSet,
        possession: PossessionIndex,
        current_time: int,
        busy_slots: Optional[Sequence[int]] = None,
        warm_start: Optional[Sequence[int]] = None,
    ) -> ConnectionMatching:
        """Wire the requests of round ``current_time``.

        ``busy_slots`` optionally gives, per box, the number of upload
        slots already consumed by connections carried over from previous
        rounds (ongoing stripe transfers); they are subtracted from the
        capacity available to new requests.

        ``warm_start`` optionally seeds the matching with a previous
        round's request→box assignment (``-1`` = unmatched).  Stale pairs
        (departed boxes, evicted caches, exhausted capacity) are dropped
        during validation, so the result is always a maximum matching of
        the *current* instance; only the solve gets cheaper.  Ignored by
        the max-flow oracle solvers.
        """
        n = self._slots.size
        capacities = self._slots.copy()
        if busy_slots is not None:
            busy = np.asarray(busy_slots, dtype=np.int64)
            if busy.shape != capacities.shape:
                raise ValueError("busy_slots must have one entry per box")
            if np.any(busy < 0):
                raise ValueError("busy_slots must be non-negative")
            capacities = np.maximum(capacities - busy, 0)

        num_requests = len(requests)
        if not num_requests:
            return ConnectionMatching(
                feasible=True,
                assignment=np.empty(0, dtype=np.int64),
                matched=0,
                request_set=requests,
                obstruction_witness=None,
                box_load=np.zeros(n, dtype=np.int64),
                capacities=capacities,
            )

        degraded = False
        if self._solver in FLOW_SOLVERS:
            request_list = list(requests)
            edges: List[Tuple[int, int]] = []
            for idx, request in enumerate(request_list):
                for box in possession.servers_for(request, current_time):
                    if box == request.box_id:
                        # A box never serves its own request: it needs the data.
                        continue
                    edges.append((idx, int(box)))
            result: BMatchingResult = solve_b_matching(
                num_left=num_requests,
                num_right=n,
                edges=edges,
                right_capacities=capacities.tolist(),
                method=self._solver,
            )
            assignment = result.assignment
            feasible, matched = result.feasible, result.matched
            witness = result.unsatisfied_witness
        else:
            if warm_start is not None and len(warm_start) != num_requests:
                raise ValueError("warm_start must have one entry per request")
            indptr, indices = possession.adjacency_for(requests, current_time)
            try:
                hk = hopcroft_karp_matching(
                    num_left=num_requests,
                    num_right=n,
                    indptr=indptr,
                    indices=indices,
                    right_capacities=capacities,
                    initial_assignment=warm_start,
                    augmentation_budget=self._augmentation_budget,
                )
                assignment = hk.assignment
                feasible, matched = hk.feasible, hk.matched
                witness = hk.unsatisfied_witness
            except AugmentationBudgetExceeded:
                # Graceful degradation: re-solve the identical instance
                # (same CSR adjacency, same capacities) with the Dinic
                # max-flow kernel.  Maximum-matching cardinality is
                # solver-independent, so feasibility and per-round metrics
                # are unchanged; only the degraded flag records the event.
                edges = [
                    (i, int(indices[e]))
                    for i in range(num_requests)
                    for e in range(int(indptr[i]), int(indptr[i + 1]))
                ]
                fallback: BMatchingResult = solve_b_matching(
                    num_left=num_requests,
                    num_right=n,
                    edges=edges,
                    right_capacities=capacities.tolist(),
                    method="dinic",
                )
                assignment = fallback.assignment
                feasible, matched = fallback.feasible, fallback.matched
                witness = fallback.unsatisfied_witness
                degraded = True

        served = assignment[assignment >= 0]
        box_load = np.bincount(served, minlength=n).astype(np.int64)
        return ConnectionMatching(
            feasible=feasible,
            assignment=assignment,
            matched=matched,
            request_set=requests,
            obstruction_witness=witness,
            box_load=box_load,
            capacities=capacities,
            degraded=degraded,
        )


def check_feasibility_hall(
    requests: RequestSet,
    possession: PossessionIndex,
    uploads: Sequence[float],
    num_stripes_per_video: int,
    current_time: int,
    max_subset_size: Optional[int] = None,
) -> Tuple[bool, Optional[Tuple[int, ...]]]:
    """Direct check of Lemma 1: ``∀ X ⊆ Y, U_{B(X)} ≥ |X|/c``.

    Exhaustive over subsets of the request set (exponential); only usable
    on small instances, where it serves as an oracle for the flow-based
    matcher.  Returns ``(feasible, witness)`` where ``witness`` is a
    violating subset of request indices (or ``None``).
    """
    uploads_arr = np.asarray(uploads, dtype=np.float64)
    request_list = list(requests)
    c = check_positive_integer(num_stripes_per_video, "num_stripes_per_video")
    neighbourhoods: List[Set[int]] = []
    for request in request_list:
        servers = possession.servers_for(request, current_time)
        servers.discard(request.box_id)
        neighbourhoods.append(servers)
    limit = len(request_list) if max_subset_size is None else min(
        max_subset_size, len(request_list)
    )
    for size in range(1, limit + 1):
        for subset in combinations(range(len(request_list)), size):
            neighbourhood: Set[int] = set()
            for idx in subset:
                neighbourhood |= neighbourhoods[idx]
            capacity = float(uploads_arr[list(neighbourhood)].sum()) if neighbourhood else 0.0
            if capacity + 1e-12 < size / c:
                return False, subset
    return True, None
