"""The preloading request strategy of Theorem 1 (Section 3).

When the user of box ``b`` demands a video ``v`` during the interval
``[t−1, t[``:

1. a **preloading request** ``(s, t, b)`` for *one* stripe ``s`` of ``v``
   is issued at time ``t``;
2. ``c−1`` **postponed requests** for the remaining stripes are issued at
   time ``t+1``;
3. playback starts at ``t+2`` once all connections are wired — a start-up
   delay of **3 rounds**.

To balance the preloading load, each video keeps a counter of the boxes
entering its swarm; the ``p``-th box preloads stripe number ``p mod c`` so
that all stripes of a video are equally preloaded.  This is the mechanism
that lets a swarm absorb growth ``µ``: boxes that entered one round ago
hold pairwise-distinct preloaded stripes and can re-serve them ``⌊u·c⌋``
times each.

:class:`PreloadingScheduler` turns user *demands* into dated
:class:`~repro.core.matching.StripeRequest` objects; the simulator drains
them round by round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.matching import StripeRequest
from repro.core.video import Catalog
from repro.util.validation import check_non_negative_integer

__all__ = [
    "Demand",
    "PreloadingScheduler",
    "ImmediateRequestScheduler",
    "START_UP_DELAY_ROUNDS",
]

#: Start-up delay of the homogeneous preloading strategy, in rounds.
START_UP_DELAY_ROUNDS = 3


def _check_catalog_growth(old: Catalog, new: Catalog) -> Catalog:
    """Validate a live catalog swap: grow-only, same stripe count/duration.

    Global stripe identifiers are ``video_id·c + index``; changing ``c``
    or shrinking the catalog would shift or orphan the identifiers of
    already-queued requests.
    """
    if (
        new.num_stripes_per_video != old.num_stripes_per_video
        or new.duration != old.duration
        or new.num_videos < old.num_videos
    ):
        raise ValueError(
            "update_catalog only supports growing the catalog with the "
            "same stripe count and duration"
        )
    return new


@dataclass(frozen=True, order=True)
class Demand:
    """A user demand: box ``box_id`` wants to play ``video_id`` from round ``time``."""

    time: int
    box_id: int
    video_id: int

    def __post_init__(self) -> None:
        check_non_negative_integer(self.time, "time")
        check_non_negative_integer(self.box_id, "box_id")
        check_non_negative_integer(self.video_id, "video_id")


class PreloadingScheduler:
    """Converts demands into preloading + postponed stripe requests.

    Parameters
    ----------
    catalog:
        The video catalog (provides ``c`` and global stripe identifiers).
    skip_locally_stored:
        When ``True``, a box does not issue requests for stripes it already
        stores statically (it can play them locally at no upload cost).
        The paper issues all ``c`` requests regardless; the default
        ``False`` follows the paper.
    """

    def __init__(self, catalog: Catalog, skip_locally_stored: bool = False):
        self._catalog = catalog
        self._skip_local = bool(skip_locally_stored)
        #: Per-video swarm-entry counter used to rotate the preload stripe.
        self._entry_counter: Dict[int, int] = {}
        #: Requests queued for future rounds, as struct-of-arrays blocks:
        #: round -> list of (stripe_ids, box_ids, demand_indices) with
        #: demand index −1 when queued through the object API.
        self._pending: Dict[int, List[Tuple[np.ndarray, np.ndarray, np.ndarray]]] = {}
        #: (box, video, demand time) log of scheduled demands, for metrics.
        self._scheduled: List[Demand] = []
        #: Array-path demand-log blocks ``(time, box_ids, video_ids)`` not
        #: yet materialized into ``_scheduled`` (lazy — the hot path never
        #: builds Demand objects).
        self._scheduled_blocks: List[Tuple[int, np.ndarray, np.ndarray]] = []

    @property
    def catalog(self) -> Catalog:
        """The catalog the scheduler generates requests against."""
        return self._catalog

    @property
    def skip_locally_stored(self) -> bool:
        """Whether locally stored stripes are skipped (non-paper variant)."""
        return self._skip_local

    def update_catalog(self, catalog: Catalog) -> None:
        """Adopt a grown catalog (live ``add_videos`` reconfiguration)."""
        self._catalog = _check_catalog_growth(self._catalog, catalog)

    @property
    def start_up_delay(self) -> int:
        """Start-up delay of the strategy, in rounds (3)."""
        return START_UP_DELAY_ROUNDS

    def swarm_entry_count(self, video_id: int) -> int:
        """Number of boxes that have entered the swarm of ``video_id`` so far."""
        return self._entry_counter.get(int(video_id), 0)

    def _flush_scheduled(self) -> None:
        """Materialize queued array-path demand blocks into ``_scheduled``.

        Keeps the object and array logging paths interleavable: whichever
        entries arrived first appear first.  ``getattr`` tolerates
        schedulers unpickled from snapshots taken before the lazy log
        existed.
        """
        blocks = getattr(self, "_scheduled_blocks", None)
        if not blocks:
            return
        for time, boxes, videos in blocks:
            self._scheduled.extend(
                Demand(time=time, box_id=b, video_id=v)
                for b, v in zip(boxes.tolist(), videos.tolist())
            )
        blocks.clear()

    # ------------------------------------------------------------------ #
    # Demand handling
    # ------------------------------------------------------------------ #
    def on_demand(
        self,
        demand: Demand,
        locally_stored: Optional[Set[int]] = None,
    ) -> List[StripeRequest]:
        """Process a demand arriving in ``[demand.time − 1, demand.time[``.

        Returns the requests to issue *at* ``demand.time`` (the preloading
        request) and internally queues the ``c−1`` postponed requests for
        ``demand.time + 1``.  ``locally_stored`` optionally lists stripe
        identifiers the demanding box stores statically (used only when
        ``skip_locally_stored`` is enabled).
        """
        video = self._catalog.video(demand.video_id)
        c = video.num_stripes
        entry_index = self._entry_counter.get(demand.video_id, 0)
        self._entry_counter[demand.video_id] = entry_index + 1
        self._flush_scheduled()
        self._scheduled.append(demand)

        preload_index = entry_index % c
        local = locally_stored if (self._skip_local and locally_stored) else set()

        immediate: List[StripeRequest] = []
        preload_stripe = self._catalog.stripe_id(demand.video_id, preload_index)
        if preload_stripe not in local:
            immediate.append(
                StripeRequest(
                    stripe_id=preload_stripe,
                    request_time=demand.time,
                    box_id=demand.box_id,
                    is_preload=True,
                )
            )

        postponed: List[int] = []
        for index in range(c):
            if index == preload_index:
                continue
            stripe_id = self._catalog.stripe_id(demand.video_id, index)
            if stripe_id in local:
                continue
            postponed.append(stripe_id)
        if postponed:
            stripes = np.asarray(postponed, dtype=np.int64)
            self._pending.setdefault(demand.time + 1, []).append(
                (
                    stripes,
                    np.full(stripes.size, demand.box_id, dtype=np.int64),
                    np.full(stripes.size, -1, dtype=np.int64),
                )
            )
        return immediate

    def on_demands_batch(
        self, accepted: List[Tuple[int, Demand]]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched :meth:`on_demand` over one round's accepted demands.

        ``accepted`` pairs each demand with its engine demand-log index.
        Returns the preloading requests as ``(stripe_ids, box_ids,
        demand_indices)`` arrays and queues the ``c−1`` postponed requests
        (with their demand indices) for the next round — identical
        requests, in identical order, to calling :meth:`on_demand` per
        demand.  Only valid without ``skip_locally_stored`` (the engine's
        configuration); all demands must share one arrival round.
        """
        if self._skip_local:
            raise RuntimeError(
                "on_demands_batch does not support skip_locally_stored"
            )
        c = self._catalog.num_stripes_per_video
        n = len(accepted)
        videos = np.empty(n, dtype=np.int64)
        preload_idx = np.empty(n, dtype=np.int64)
        boxes = np.empty(n, dtype=np.int64)
        demand_indices = np.empty(n, dtype=np.int64)
        counter = self._entry_counter
        self._flush_scheduled()
        for j, (demand_index, demand) in enumerate(accepted):
            entry = counter.get(demand.video_id, 0)
            counter[demand.video_id] = entry + 1
            self._scheduled.append(demand)
            videos[j] = demand.video_id
            preload_idx[j] = entry % c
            boxes[j] = demand.box_id
            demand_indices[j] = demand_index
        pre_stripes = videos * c + preload_idx
        if n and c > 1:
            stripe_offsets = np.arange(c, dtype=np.int64)
            grid = videos[:, None] * c + stripe_offsets[None, :]
            keep = stripe_offsets[None, :] != preload_idx[:, None]
            self._pending.setdefault(int(accepted[0][1].time) + 1, []).append(
                (
                    grid[keep],
                    np.repeat(boxes, c - 1),
                    np.repeat(demand_indices, c - 1),
                )
            )
        return pre_stripes, boxes, demand_indices

    def on_demand_arrays(
        self,
        video_ids: np.ndarray,
        box_ids: np.ndarray,
        demand_indices: np.ndarray,
        time: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Array-path :meth:`on_demands_batch`: no Demand objects at all.

        Produces the same preloading requests and queues the same
        postponed blocks as the object paths for the same arrivals in the
        same order; the demand log is recorded lazily (materialized on
        :attr:`demands_seen` access).  Only valid without
        ``skip_locally_stored``; all arrivals share round ``time``.
        """
        if self._skip_local:
            raise RuntimeError("on_demand_arrays does not support skip_locally_stored")
        c = self._catalog.num_stripes_per_video
        n = int(video_ids.size)
        time = int(time)
        if n == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty
        # Per-video swarm-entry counters: the j-th arrival of a video this
        # round preloads stripe (counter + j) mod c.  The stable sort keeps
        # arrival order within each video, so ranks equal the per-demand
        # counter values the object path would have used.
        order = np.argsort(video_ids, kind="stable")
        sorted_videos = video_ids[order]
        starts = np.empty(n, dtype=bool)
        starts[0] = True
        np.not_equal(sorted_videos[1:], sorted_videos[:-1], out=starts[1:])
        start_pos = np.flatnonzero(starts)
        counts = np.diff(np.append(start_pos, n))
        unique_videos = sorted_videos[start_pos]
        base = np.empty(unique_videos.size, dtype=np.int64)
        counter = self._entry_counter
        for j, vid in enumerate(unique_videos.tolist()):
            entry = counter.get(vid, 0)
            base[j] = entry
            counter[vid] = entry + int(counts[j])
        rank_sorted = np.arange(n, dtype=np.int64) - np.repeat(start_pos, counts)
        entry_sorted = base.repeat(counts) + rank_sorted
        entries = np.empty(n, dtype=np.int64)
        entries[order] = entry_sorted
        preload_idx = entries % c
        blocks = getattr(self, "_scheduled_blocks", None)
        if blocks is None:
            blocks = self._scheduled_blocks = []
        blocks.append((time, box_ids.copy(), video_ids.copy()))
        pre_stripes = video_ids * c + preload_idx
        if c > 1:
            stripe_offsets = np.arange(c, dtype=np.int64)
            grid = video_ids[:, None] * c + stripe_offsets[None, :]
            keep = stripe_offsets[None, :] != preload_idx[:, None]
            self._pending.setdefault(time + 1, []).append(
                (
                    grid[keep],
                    np.repeat(box_ids, c - 1),
                    np.repeat(demand_indices, c - 1),
                )
            )
        return pre_stripes, box_ids, demand_indices

    def due_arrays(self, time: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pop the postponed requests queued for round ``time`` as arrays.

        Returns ``(stripe_ids, box_ids, demand_indices)``; a demand index
        of −1 marks a request queued through the object API (the engine
        resolves it against its demand log).
        """
        check_non_negative_integer(time, "time")
        blocks = self._pending.pop(time, None)
        if not blocks:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty
        if len(blocks) == 1:
            return blocks[0]
        return (
            np.concatenate([b[0] for b in blocks]),
            np.concatenate([b[1] for b in blocks]),
            np.concatenate([b[2] for b in blocks]),
        )

    def requests_due(self, time: int) -> List[StripeRequest]:
        """Pop and return the postponed requests queued for round ``time``."""
        stripes, boxes, _ = self.due_arrays(time)
        return [
            StripeRequest(
                stripe_id=int(s), request_time=time, box_id=int(b), is_preload=False
            )
            for s, b in zip(stripes.tolist(), boxes.tolist())
        ]

    def pending_rounds(self) -> Tuple[int, ...]:
        """Rounds that still have queued postponed requests (sorted)."""
        return tuple(sorted(self._pending))

    def playback_start_round(self, demand: Demand) -> int:
        """Round at which playback of ``demand`` begins (demand time + delay − 1).

        The demand arrives in ``[t−1, t[``, the preload request is wired for
        ``t+1`` and the postponed ones for ``t+2``; all ``c`` stripes flow
        from ``t+2`` on, i.e. 3 rounds after the demand arrival interval
        started.
        """
        return demand.time + START_UP_DELAY_ROUNDS - 1

    @property
    def demands_seen(self) -> Tuple[Demand, ...]:
        """All demands processed so far (chronological order of arrival)."""
        self._flush_scheduled()
        return tuple(self._scheduled)

    def reset(self) -> None:
        """Clear all counters and queued requests."""
        self._entry_counter.clear()
        self._pending.clear()
        self._scheduled.clear()
        getattr(self, "_scheduled_blocks", []).clear()


class ImmediateRequestScheduler:
    """Ablation of the preloading strategy: request all ``c`` stripes at once.

    This scheduler drops both ingredients of Section 3 — the one-round
    postponement of ``c−1`` stripes and the round-robin rotation of the
    preload stripe — and simply issues all ``c`` stripe requests at the
    demand round.  It is *not* part of the paper's construction; it exists
    to measure how much the preloading strategy buys: without it, the
    newest generation of a fast-growing swarm cannot be fed by the
    previous generation's preloaded stripes, and flash crowds at high ``µ``
    overwhelm the static allocation (see
    ``benchmarks/bench_ablation_preloading.py``).

    The interface mirrors :class:`PreloadingScheduler` so the simulator can
    use either interchangeably.  The nominal start-up delay is 2 rounds
    (requests at ``t``, wired for ``t+1``, playback at ``t+1``), one round
    less than the preloading strategy — the ablation trades robustness for
    that round.
    """

    def __init__(self, catalog: Catalog):
        self._catalog = catalog
        self._scheduled: List[Demand] = []

    @property
    def catalog(self) -> Catalog:
        """The catalog the scheduler generates requests against."""
        return self._catalog

    def update_catalog(self, catalog: Catalog) -> None:
        """Adopt a grown catalog (same constraints as the preloading strategy)."""
        self._catalog = _check_catalog_growth(self._catalog, catalog)

    @property
    def start_up_delay(self) -> int:
        """Nominal start-up delay of the ablated strategy (2 rounds)."""
        return 2

    def on_demand(
        self,
        demand: Demand,
        locally_stored: Optional[Set[int]] = None,
    ) -> List[StripeRequest]:
        """Issue all ``c`` stripe requests of the demanded video immediately."""
        video = self._catalog.video(demand.video_id)
        self._scheduled.append(demand)
        requests = []
        for index in range(video.num_stripes):
            requests.append(
                StripeRequest(
                    stripe_id=self._catalog.stripe_id(demand.video_id, index),
                    request_time=demand.time,
                    box_id=demand.box_id,
                    is_preload=(index == 0),
                )
            )
        return requests

    def requests_due(self, time: int) -> List[StripeRequest]:
        """No postponed requests exist under this strategy."""
        check_non_negative_integer(time, "time")
        return []

    @property
    def demands_seen(self) -> Tuple[Demand, ...]:
        """All demands processed so far."""
        return tuple(self._scheduled)

    def reset(self) -> None:
        """Clear the demand log."""
        self._scheduled.clear()
