"""System parameters and box populations (Table 1 of the paper).

The paper studies an ``(n, u, d)``-video system: ``n`` collaborating boxes
with *average* normalized upload capacity ``u`` (in units of the video
bitrate) and *average* storage capacity ``d`` (in number of videos).  This
module provides:

* :class:`SystemParameters` — the full parameter vector of Table 1
  (``n, m, d, k, u, c, µ, ℓ, T``), with the consistency relations between
  them (``k ≈ d n / m``, ``ℓ = 1/c``) enforced or derived.
* :class:`BoxPopulation` — per-box upload/storage vectors together with the
  classification predicates used throughout the paper (homogeneous,
  proportionally heterogeneous, ``u*``-storage-balanced) and the aggregate
  quantities (average upload, upload deficit ``Δ(u*)``).
* Constructors for the standard populations used in the experiments
  (homogeneous, proportional, two-class rich/poor, truncated-Pareto).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.util.rng import RandomState, as_generator
from repro.util.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_positive_integer,
)

__all__ = [
    "SystemParameters",
    "BoxPopulation",
    "homogeneous_population",
    "proportional_population",
    "two_class_population",
    "pareto_population",
]


@dataclass(frozen=True)
class SystemParameters:
    """The parameter vector of Table 1.

    Attributes
    ----------
    n:
        Number of boxes in the system.
    u:
        Average normalized upload capacity of a box (video bitrate = 1).
    d:
        Average storage capacity of a box, in number of videos.
    c:
        Number of stripes per video.  A video is viewed by downloading its
        ``c`` stripes (each of rate ``1/c``) simultaneously.
    mu:
        Maximal swarm growth: a swarm of size ``p`` at round ``t`` has size
        at most ``⌈max(p, 1)·µ⌉`` at round ``t+1``.
    m:
        Catalog size — the number of distinct videos stored in the system.
    k:
        Number of replicas of each stripe under random allocation.  The
        paper assumes ``k = d·n/m`` is an integer.
    video_rounds:
        Video duration ``T`` expressed in time rounds.  Only the playback
        cache window depends on it; the default (120) corresponds to a
        feature-length film with one-minute rounds.

    The minimal chunk size of the model is ``ℓ = 1/c`` (a box never stores
    less than one full stripe of a video it holds), exposed as
    :attr:`chunk_size`.
    """

    n: int
    u: float
    d: float
    c: int
    mu: float = 1.5
    m: Optional[int] = None
    k: Optional[int] = None
    video_rounds: int = 120

    def __post_init__(self) -> None:
        object.__setattr__(self, "n", check_positive_integer(self.n, "n"))
        object.__setattr__(self, "u", check_non_negative(self.u, "u"))
        object.__setattr__(self, "d", check_positive(self.d, "d"))
        object.__setattr__(self, "c", check_positive_integer(self.c, "c"))
        object.__setattr__(self, "mu", check_in_range(self.mu, "mu", 1.0, math.inf))
        object.__setattr__(
            self, "video_rounds", check_positive_integer(self.video_rounds, "video_rounds")
        )
        m = self.m
        k = self.k
        total_slots = self.d * self.n  # total storage in videos
        if m is None and k is None:
            raise ValueError("at least one of m (catalog size) or k (replicas) is required")
        if m is None:
            k = check_positive_integer(k, "k")
            m = int(total_slots // k)
            if m <= 0:
                raise ValueError(
                    f"storage d*n={total_slots} too small for k={k} replicas per stripe"
                )
        elif k is None:
            m = check_positive_integer(m, "m")
            k = int(total_slots // m)
            if k <= 0:
                raise ValueError(
                    f"catalog m={m} exceeds total storage d*n={total_slots}: "
                    "cannot place even one replica per stripe"
                )
        else:
            m = check_positive_integer(m, "m")
            k = check_positive_integer(k, "k")
            if m * k > total_slots + 1e-9:
                raise ValueError(
                    f"m*k = {m * k} replica-videos exceed total storage d*n = {total_slots}"
                )
        object.__setattr__(self, "m", m)
        object.__setattr__(self, "k", k)

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def chunk_size(self) -> float:
        """Minimal chunk size ``ℓ = 1/c``."""
        return 1.0 / self.c

    @property
    def stripe_rate(self) -> float:
        """Rate of a single stripe, ``1/c`` of the (unit) video bitrate."""
        return 1.0 / self.c

    @property
    def total_stripes(self) -> int:
        """Number of distinct stripes stored in the system, ``m·c``."""
        return self.m * self.c

    @property
    def total_replicas(self) -> int:
        """Number of stripe replicas stored in the system, ``k·m·c``."""
        return self.k * self.m * self.c

    @property
    def total_storage_slots(self) -> int:
        """Number of stripe-sized storage slots in the system, ``⌊d·n·c⌋``."""
        return int(round(self.d * self.n * self.c))

    @property
    def storage_slots_per_box(self) -> int:
        """Stripe-sized slots per box under homogeneous storage, ``⌊d·c⌋``."""
        return int(round(self.d * self.c))

    @property
    def uploads_per_box(self) -> int:
        """Whole stripes a box of upload ``u`` can serve per round, ``⌊u·c⌋``."""
        return int(math.floor(self.u * self.c + 1e-9))

    @property
    def effective_upload(self) -> float:
        """Effective upload ``u' = ⌊u·c⌋ / c`` after truncation to stripes."""
        return self.uploads_per_box / self.c

    def with_catalog(self, m: int) -> "SystemParameters":
        """Return a copy with catalog size ``m`` (and ``k`` re-derived)."""
        return SystemParameters(
            n=self.n, u=self.u, d=self.d, c=self.c, mu=self.mu, m=m, k=None,
            video_rounds=self.video_rounds,
        )

    def with_replication(self, k: int) -> "SystemParameters":
        """Return a copy with replication factor ``k`` (and ``m`` re-derived)."""
        return SystemParameters(
            n=self.n, u=self.u, d=self.d, c=self.c, mu=self.mu, m=None, k=k,
            video_rounds=self.video_rounds,
        )

    def describe(self) -> Dict[str, float]:
        """Return the Table 1 parameter vector as a plain dictionary."""
        return {
            "n": self.n,
            "m": self.m,
            "d": self.d,
            "k": self.k,
            "u": self.u,
            "c": self.c,
            "mu": self.mu,
            "ell": self.chunk_size,
            "T": self.video_rounds,
        }


class BoxPopulation:
    """A population of boxes with per-box upload and storage capacities.

    Parameters
    ----------
    uploads:
        Normalized upload capacity ``u_b`` of every box (video bitrate = 1).
    storages:
        Storage capacity ``d_b`` of every box, in number of videos.

    The class exposes the aggregate quantities and classification
    predicates of Sections 1.1 and 4 of the paper.
    """

    def __init__(self, uploads: Sequence[float], storages: Sequence[float]):
        uploads_arr = np.asarray(uploads, dtype=np.float64)
        storages_arr = np.asarray(storages, dtype=np.float64)
        if uploads_arr.ndim != 1 or storages_arr.ndim != 1:
            raise ValueError("uploads and storages must be 1-D sequences")
        if uploads_arr.size == 0:
            raise ValueError("population must contain at least one box")
        if uploads_arr.size != storages_arr.size:
            raise ValueError(
                f"uploads ({uploads_arr.size}) and storages ({storages_arr.size}) "
                "must have the same length"
            )
        if np.any(uploads_arr < 0):
            raise ValueError("upload capacities must be non-negative")
        if np.any(storages_arr < 0):
            raise ValueError("storage capacities must be non-negative")
        self._uploads = uploads_arr.copy()
        self._storages = storages_arr.copy()
        self._uploads.setflags(write=False)
        self._storages.setflags(write=False)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of boxes."""
        return int(self._uploads.size)

    def __len__(self) -> int:
        return self.n

    @property
    def uploads(self) -> np.ndarray:
        """Read-only array of per-box uploads ``u_b``."""
        return self._uploads

    @property
    def storages(self) -> np.ndarray:
        """Read-only array of per-box storages ``d_b``."""
        return self._storages

    @property
    def average_upload(self) -> float:
        """Average upload ``u`` across the population."""
        return float(self._uploads.mean())

    @property
    def average_storage(self) -> float:
        """Average storage ``d`` across the population."""
        return float(self._storages.mean())

    @property
    def total_upload(self) -> float:
        """Aggregate upload capacity ``Σ_b u_b``."""
        return float(self._uploads.sum())

    @property
    def total_storage(self) -> float:
        """Aggregate storage ``Σ_b d_b`` (in videos)."""
        return float(self._storages.sum())

    @property
    def max_storage(self) -> float:
        """``d_max = max_b d_b`` — appears in the negative result."""
        return float(self._storages.max())

    @property
    def min_upload(self) -> float:
        """``min_b u_b``."""
        return float(self._uploads.min())

    @property
    def max_upload(self) -> float:
        """``max_b u_b``."""
        return float(self._uploads.max())

    # ------------------------------------------------------------------ #
    # Classification predicates (Sections 1.1 and 4)
    # ------------------------------------------------------------------ #
    def is_homogeneous(self, tol: float = 1e-9) -> bool:
        """Whether every box has the same upload and the same storage."""
        return bool(
            np.allclose(self._uploads, self._uploads[0], atol=tol)
            and np.allclose(self._storages, self._storages[0], atol=tol)
        )

    def is_proportionally_heterogeneous(self, tol: float = 1e-9) -> bool:
        """Whether ``u_b / d_b`` is the same for every box.

        The paper calls such a system *proportionally heterogeneous*; it is
        automatically ``u*``-storage-balanced for ``d ≥ 2`` and ``u* ≤ u``.
        """
        if np.any(self._storages <= 0):
            return False
        ratios = self._uploads / self._storages
        return bool(np.allclose(ratios, ratios[0], atol=tol))

    def upload_deficit(self, u_star: float) -> float:
        """Upload deficit ``Δ(u*) = Σ_{b : u_b < u*} (u* − u_b)``.

        The aggregate bandwidth missing to *poor* boxes, i.e. boxes with
        capacity below the threshold ``u*``.
        """
        u_star = check_positive(u_star, "u_star")
        poor = self._uploads < u_star
        return float(np.sum(u_star - self._uploads[poor]))

    def poor_boxes(self, u_star: float) -> np.ndarray:
        """Indices of boxes with ``u_b < u*`` (the *poor* boxes)."""
        u_star = check_positive(u_star, "u_star")
        return np.flatnonzero(self._uploads < u_star).astype(np.int64)

    def rich_boxes(self, u_star: float) -> np.ndarray:
        """Indices of boxes with ``u_b ≥ u*`` (the *rich* boxes)."""
        u_star = check_positive(u_star, "u_star")
        return np.flatnonzero(self._uploads >= u_star).astype(np.int64)

    def is_storage_balanced(self, u_star: float, tol: float = 1e-9) -> bool:
        """Whether the population is ``u*``-storage-balanced.

        Requires ``2 ≤ d_b/u_b`` and ``d_b/u_b ≤ d/u*`` for every box
        (Section 4).  Boxes with zero upload are only admissible if they
        also have zero storage (they contribute nothing either way).
        """
        u_star = check_positive(u_star, "u_star")
        d_avg = self.average_storage
        for ub, db in zip(self._uploads, self._storages):
            if ub <= tol:
                if db > tol:
                    return False
                continue
            ratio = db / ub
            if ratio < 2.0 - tol:
                return False
            if ratio > d_avg / u_star + tol:
                return False
        return True

    def satisfies_scalability_condition(self, tol: float = 1e-12) -> bool:
        """Whether ``u > 1 + Δ(1)/n`` — the heterogeneous scalability condition."""
        return self.average_upload > 1.0 + self.upload_deficit(1.0) / self.n + tol

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def scaled_storage(self, factor: float) -> "BoxPopulation":
        """Return a copy with every storage capacity multiplied by ``factor``."""
        factor = check_positive(factor, "factor")
        return BoxPopulation(self._uploads, self._storages * factor)

    def truncated_storage_to_ratio(self, tau: Optional[float] = None) -> "BoxPopulation":
        """Reduce storage to ``d'_b = τ·u_b`` with ``τ = min_b d_b/u_b``.

        Section 4: a system with ``d_b/u_b ≥ 2`` for all ``b`` can always be
        considered ``u*``-storage-balanced by artificially reducing storage.
        """
        positive = self._uploads > 0
        if not np.any(positive):
            raise ValueError("cannot balance a population with no upload capacity")
        ratios = self._storages[positive] / self._uploads[positive]
        tau_val = float(ratios.min()) if tau is None else check_positive(tau, "tau")
        return BoxPopulation(self._uploads, self._uploads * tau_val)

    def storage_slots(self, c: int) -> np.ndarray:
        """Per-box number of stripe-sized storage slots, ``⌊d_b·c⌋``."""
        c = check_positive_integer(c, "c")
        return np.floor(self._storages * c + 1e-9).astype(np.int64)

    def upload_slots(self, c: int) -> np.ndarray:
        """Per-box number of stripes uploadable per round, ``⌊u_b·c⌋``."""
        c = check_positive_integer(c, "c")
        return np.floor(self._uploads * c + 1e-9).astype(np.int64)

    def parameters(
        self,
        c: int,
        mu: float = 1.5,
        m: Optional[int] = None,
        k: Optional[int] = None,
        video_rounds: int = 120,
    ) -> SystemParameters:
        """Build the :class:`SystemParameters` vector for this population."""
        return SystemParameters(
            n=self.n,
            u=self.average_upload,
            d=self.average_storage,
            c=c,
            mu=mu,
            m=m,
            k=k,
            video_rounds=video_rounds,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"BoxPopulation(n={self.n}, u_avg={self.average_upload:.3f}, "
            f"d_avg={self.average_storage:.3f}, "
            f"homogeneous={self.is_homogeneous()})"
        )


# ---------------------------------------------------------------------- #
# Standard populations
# ---------------------------------------------------------------------- #
def homogeneous_population(n: int, u: float, d: float) -> BoxPopulation:
    """A homogeneous population: every box has upload ``u`` and storage ``d``."""
    n = check_positive_integer(n, "n")
    u = check_non_negative(u, "u")
    d = check_positive(d, "d")
    return BoxPopulation(np.full(n, u), np.full(n, d))


def proportional_population(
    uploads: Sequence[float], storage_per_upload: float
) -> BoxPopulation:
    """A proportionally heterogeneous population with ``d_b = ratio · u_b``."""
    ratio = check_positive(storage_per_upload, "storage_per_upload")
    uploads_arr = np.asarray(uploads, dtype=np.float64)
    return BoxPopulation(uploads_arr, uploads_arr * ratio)


def two_class_population(
    n: int,
    rich_fraction: float,
    u_rich: float,
    u_poor: float,
    d_rich: float,
    d_poor: float,
    random_state: RandomState = None,
    shuffle: bool = False,
) -> BoxPopulation:
    """A rich/poor two-class population (the heterogeneous experiments).

    ``rich_fraction`` of the boxes get ``(u_rich, d_rich)``; the rest get
    ``(u_poor, d_poor)``.  With ``shuffle=True`` box indices are randomly
    interleaved, which matters only for readability of traces.
    """
    n = check_positive_integer(n, "n")
    rich_fraction = check_in_range(rich_fraction, "rich_fraction", 0.0, 1.0)
    n_rich = int(round(n * rich_fraction))
    n_poor = n - n_rich
    uploads = np.concatenate([np.full(n_rich, u_rich), np.full(n_poor, u_poor)])
    storages = np.concatenate([np.full(n_rich, d_rich), np.full(n_poor, d_poor)])
    if shuffle:
        order = as_generator(random_state).permutation(n)
        uploads = uploads[order]
        storages = storages[order]
    return BoxPopulation(uploads, storages)


def pareto_population(
    n: int,
    u_min: float,
    shape: float,
    storage_per_upload: float,
    u_cap: Optional[float] = None,
    random_state: RandomState = None,
) -> BoxPopulation:
    """A truncated-Pareto upload population with proportional storage.

    Models a realistic heavy-tailed access-link distribution: uploads are
    ``u_min · (1 + Pareto(shape))`` capped at ``u_cap`` and storage is
    proportional, so the population is proportionally heterogeneous.
    """
    n = check_positive_integer(n, "n")
    u_min = check_positive(u_min, "u_min")
    shape = check_positive(shape, "shape")
    gen = as_generator(random_state)
    uploads = u_min * (1.0 + gen.pareto(shape, size=n))
    if u_cap is not None:
        u_cap = check_positive(u_cap, "u_cap")
        if u_cap < u_min:
            raise ValueError(f"u_cap ({u_cap}) must be at least u_min ({u_min})")
        uploads = np.minimum(uploads, u_cap)
    return proportional_population(uploads, storage_per_upload)
