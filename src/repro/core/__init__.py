"""Core model of the paper: parameters, videos, boxes, allocations,
connection matching, the preloading strategy, heterogeneous balancing and
the threshold/obstruction numerics.

The subpackage follows the paper's structure:

* Section 1.1 (model)            → :mod:`repro.core.parameters`,
  :mod:`repro.core.video`, :mod:`repro.core.box`
* Section 2.1 (random allocation) → :mod:`repro.core.allocation`
* Section 2.2–2.3 (matching)      → :mod:`repro.core.matching`
* Section 3 (Theorem 1)           → :mod:`repro.core.preloading`,
  :mod:`repro.core.thresholds`, :mod:`repro.core.obstruction`
* Section 4 (Theorem 2)           → :mod:`repro.core.heterogeneous`
* Section 1.3 (negative result)   → :mod:`repro.core.negative`
"""

from repro.core.parameters import (
    BoxPopulation,
    SystemParameters,
    homogeneous_population,
    pareto_population,
    proportional_population,
    two_class_population,
)
from repro.core.video import Catalog, Stripe, StripeId, Video
from repro.core.box import Box, PlaybackCache
from repro.core.allocation import (
    Allocation,
    AllocationError,
    random_independent_allocation,
    random_permutation_allocation,
    round_robin_allocation,
)
from repro.core.matching import (
    ConnectionMatcher,
    ConnectionMatching,
    PossessionIndex,
    RequestSet,
    StripeRequest,
    check_feasibility_hall,
)
from repro.core.preloading import (
    START_UP_DELAY_ROUNDS,
    Demand,
    ImmediateRequestScheduler,
    PreloadingScheduler,
)
from repro.core.heterogeneous import (
    RELAYED_START_UP_DELAY_ROUNDS,
    CompensationError,
    CompensationPlan,
    RelayedPreloadingScheduler,
    compute_compensation_plan,
    direct_stripe_budget,
    is_balanced,
    is_upload_compensable,
)
from repro.core import thresholds, obstruction, negative

__all__ = [
    "BoxPopulation",
    "SystemParameters",
    "homogeneous_population",
    "pareto_population",
    "proportional_population",
    "two_class_population",
    "Catalog",
    "Stripe",
    "StripeId",
    "Video",
    "Box",
    "PlaybackCache",
    "Allocation",
    "AllocationError",
    "random_independent_allocation",
    "random_permutation_allocation",
    "round_robin_allocation",
    "ConnectionMatcher",
    "ConnectionMatching",
    "PossessionIndex",
    "RequestSet",
    "StripeRequest",
    "check_feasibility_hall",
    "START_UP_DELAY_ROUNDS",
    "Demand",
    "ImmediateRequestScheduler",
    "PreloadingScheduler",
    "RELAYED_START_UP_DELAY_ROUNDS",
    "CompensationError",
    "CompensationPlan",
    "RelayedPreloadingScheduler",
    "compute_compensation_plan",
    "direct_stripe_budget",
    "is_balanced",
    "is_upload_compensable",
    "thresholds",
    "obstruction",
    "negative",
]
