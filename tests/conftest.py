"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.allocation import random_permutation_allocation
from repro.core.parameters import BoxPopulation, homogeneous_population
from repro.core.video import Catalog


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="regenerate the golden scenario traces under tests/golden/ "
        "instead of diffing against them (for intentional behaviour changes)",
    )


@pytest.fixture
def regen_golden(request: pytest.FixtureRequest) -> bool:
    """Whether the run was asked to regenerate golden traces."""
    return bool(request.config.getoption("--regen-golden"))


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic NumPy generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_catalog() -> Catalog:
    """A small catalog: 8 videos, 4 stripes, 20-round duration."""
    return Catalog(num_videos=8, num_stripes=4, duration=20)


@pytest.fixture
def small_population() -> BoxPopulation:
    """A small homogeneous population: 24 boxes, u=2, d=3."""
    return homogeneous_population(24, u=2.0, d=3.0)


@pytest.fixture
def small_allocation(small_catalog, small_population):
    """A random permutation allocation on the small system (k=4)."""
    return random_permutation_allocation(
        small_catalog, small_population, replicas_per_stripe=4, random_state=7
    )


@pytest.fixture
def medium_catalog() -> Catalog:
    """A medium catalog: 30 videos, 5 stripes, 40-round duration."""
    return Catalog(num_videos=30, num_stripes=5, duration=40)


@pytest.fixture
def medium_population() -> BoxPopulation:
    """A medium homogeneous population: 60 boxes, u=2, d=4."""
    return homogeneous_population(60, u=2.0, d=4.0)


@pytest.fixture
def medium_allocation(medium_catalog, medium_population):
    """A random permutation allocation on the medium system (k=4)."""
    return random_permutation_allocation(
        medium_catalog, medium_population, replicas_per_stripe=4, random_state=11
    )
