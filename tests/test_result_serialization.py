"""JSON round-trips of SimulationResult / SimulationMetrics / RoundStats."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.scenarios.build import build_scenario
from repro.scenarios.registry import get_scenario
from repro.sim.engine import SimulationResult
from repro.sim.metrics import MetricsCollector, RoundStats, SimulationMetrics
from repro.sim.trace import SimulationTrace


@pytest.fixture(scope="module")
def result() -> SimulationResult:
    return build_scenario(get_scenario("flashcrowd_spike")).run(8)


def _assert_native(obj):
    """Recursively assert every scalar is a native Python type (JSON-safe)."""
    if isinstance(obj, dict):
        for value in obj.values():
            _assert_native(value)
    elif isinstance(obj, (list, tuple)):
        for value in obj:
            _assert_native(value)
    else:
        assert obj is None or isinstance(obj, (bool, int, float, str)), repr(obj)
        assert not isinstance(obj, np.generic), f"numpy scalar leaked: {obj!r}"


def test_round_stats_round_trip():
    stats = RoundStats(
        time=np.int64(3),
        active_requests=np.int64(7),
        new_requests=4,
        matched=np.int64(7),
        unmatched=0,
        feasible=np.bool_(True),
        upload_used=np.int64(7),
        upload_capacity=64,
    )
    payload = stats.to_dict()
    _assert_native(payload)
    rebuilt = RoundStats.from_dict(json.loads(json.dumps(payload)))
    assert rebuilt.to_dict() == payload
    assert rebuilt.utilization == stats.utilization


def test_simulation_metrics_round_trip(result):
    metrics = result.metrics
    payload = metrics.to_dict()
    _assert_native(payload)
    rebuilt = SimulationMetrics.from_dict(json.loads(json.dumps(payload)))
    assert rebuilt == metrics
    assert rebuilt.to_dict() == payload


def test_metrics_round_trip_without_startup_delays():
    collector = MetricsCollector(4)
    collector.record_round(
        time=0,
        active_requests=0,
        new_requests=0,
        matched=0,
        feasible=True,
        box_load=np.zeros(4, dtype=np.int64),
        upload_capacity=8,
    )
    metrics = collector.finalize()
    assert metrics.max_startup_delay is None
    rebuilt = SimulationMetrics.from_dict(metrics.to_dict())
    assert rebuilt == metrics


def test_simulation_result_round_trip_summary(result):
    payload = result.to_dict()
    _assert_native(payload)
    assert payload["trace_events"] == len(result.trace)
    assert "trace" not in payload
    rebuilt = SimulationResult.from_dict(json.loads(json.dumps(payload)))
    assert rebuilt.metrics == result.metrics
    assert rebuilt.rejected_demands == result.rejected_demands
    assert rebuilt.stopped_early == result.stopped_early
    assert len(rebuilt.trace) == 0  # summary form does not embed events


def test_simulation_result_round_trip_with_trace(result):
    payload = json.loads(json.dumps(result.to_dict(include_trace=True)))
    rebuilt = SimulationResult.from_dict(payload)
    assert len(rebuilt.trace) == len(result.trace)
    assert rebuilt.trace.to_records() == result.trace.to_records()


def test_trace_from_records_rejects_unknown_events():
    with pytest.raises(ValueError):
        SimulationTrace.from_records([{"event": "WarpDriveEvent", "time": 0}])
