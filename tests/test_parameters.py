"""Tests for repro.core.parameters (Table 1 model and box populations)."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.parameters import (
    BoxPopulation,
    SystemParameters,
    homogeneous_population,
    pareto_population,
    proportional_population,
    two_class_population,
)


class TestSystemParameters:
    def test_derive_catalog_from_replication(self):
        params = SystemParameters(n=100, u=2.0, d=4.0, c=5, k=8)
        assert params.m == 50
        assert params.k == 8

    def test_derive_replication_from_catalog(self):
        params = SystemParameters(n=100, u=2.0, d=4.0, c=5, m=40)
        assert params.k == 10

    def test_requires_m_or_k(self):
        with pytest.raises(ValueError):
            SystemParameters(n=10, u=1.5, d=2.0, c=4)

    def test_rejects_overcommitted_storage(self):
        with pytest.raises(ValueError):
            SystemParameters(n=10, u=1.5, d=2.0, c=4, m=30, k=2)

    def test_rejects_catalog_too_large_for_one_replica(self):
        with pytest.raises(ValueError):
            SystemParameters(n=10, u=1.5, d=1.0, c=4, m=100)

    def test_chunk_and_stripe_sizes(self):
        params = SystemParameters(n=10, u=1.5, d=2.0, c=4, k=2)
        assert params.chunk_size == pytest.approx(0.25)
        assert params.stripe_rate == pytest.approx(0.25)
        assert params.total_stripes == params.m * 4
        assert params.total_replicas == params.m * 4 * 2

    def test_storage_and_upload_slots(self):
        params = SystemParameters(n=10, u=1.3, d=2.5, c=4, k=2)
        assert params.storage_slots_per_box == 10
        assert params.uploads_per_box == 5
        assert params.effective_upload == pytest.approx(1.25)

    def test_mu_must_be_at_least_one(self):
        with pytest.raises(ValueError):
            SystemParameters(n=10, u=1.5, d=2.0, c=4, k=2, mu=0.9)

    def test_with_catalog_and_with_replication(self):
        params = SystemParameters(n=100, u=2.0, d=4.0, c=5, k=8)
        smaller = params.with_catalog(25)
        assert smaller.m == 25 and smaller.k == 16
        denser = params.with_replication(4)
        assert denser.k == 4 and denser.m == 100

    def test_describe_contains_table1_keys(self):
        params = SystemParameters(n=10, u=1.5, d=2.0, c=4, k=2)
        desc = params.describe()
        for key in ("n", "m", "d", "k", "u", "c", "mu", "ell", "T"):
            assert key in desc

    def test_validation_of_basic_fields(self):
        with pytest.raises(ValueError):
            SystemParameters(n=0, u=1.0, d=1.0, c=4, k=1)
        with pytest.raises(ValueError):
            SystemParameters(n=10, u=1.0, d=-1.0, c=4, k=1)
        with pytest.raises(ValueError):
            SystemParameters(n=10, u=1.0, d=1.0, c=0, k=1)

    @given(
        n=st.integers(1, 500),
        d=st.floats(0.5, 16, allow_nan=False),
        c=st.integers(1, 16),
        k=st.integers(1, 8),
    )
    def test_replication_times_catalog_never_exceeds_storage(self, n, d, c, k):
        try:
            params = SystemParameters(n=n, u=1.5, d=d, c=c, k=k)
        except ValueError:
            return
        assert params.m * params.k <= d * n + 1e-9


class TestBoxPopulationBasics:
    def test_homogeneous_population(self):
        pop = homogeneous_population(10, u=1.5, d=3.0)
        assert pop.n == 10
        assert pop.is_homogeneous()
        assert pop.average_upload == pytest.approx(1.5)
        assert pop.average_storage == pytest.approx(3.0)
        assert pop.total_upload == pytest.approx(15.0)

    def test_length_and_repr(self):
        pop = homogeneous_population(4, u=1.0, d=1.0)
        assert len(pop) == 4

    def test_arrays_are_read_only(self):
        pop = homogeneous_population(4, u=1.0, d=1.0)
        with pytest.raises(ValueError):
            pop.uploads[0] = 5.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            BoxPopulation([1.0, 2.0], [1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxPopulation([], [])

    def test_negative_capacities_rejected(self):
        with pytest.raises(ValueError):
            BoxPopulation([-1.0], [1.0])
        with pytest.raises(ValueError):
            BoxPopulation([1.0], [-1.0])

    def test_proportional_population(self):
        pop = proportional_population([1.0, 2.0, 4.0], storage_per_upload=2.0)
        assert pop.is_proportionally_heterogeneous()
        assert not pop.is_homogeneous()
        np.testing.assert_allclose(pop.storages, [2.0, 4.0, 8.0])

    def test_two_class_population_counts(self):
        pop = two_class_population(
            10, rich_fraction=0.3, u_rich=3.0, u_poor=0.5, d_rich=6.0, d_poor=1.0
        )
        assert pop.n == 10
        assert int(np.sum(pop.uploads == 3.0)) == 3
        assert int(np.sum(pop.uploads == 0.5)) == 7

    def test_two_class_population_shuffle_is_seeded(self):
        a = two_class_population(
            10, 0.5, 3.0, 0.5, 6.0, 1.0, random_state=3, shuffle=True
        )
        b = two_class_population(
            10, 0.5, 3.0, 0.5, 6.0, 1.0, random_state=3, shuffle=True
        )
        np.testing.assert_array_equal(a.uploads, b.uploads)

    def test_pareto_population_properties(self):
        pop = pareto_population(
            50, u_min=0.5, shape=2.0, storage_per_upload=2.0, u_cap=8.0, random_state=0
        )
        assert pop.n == 50
        assert pop.min_upload >= 0.5
        assert pop.max_upload <= 8.0
        assert pop.is_proportionally_heterogeneous()

    def test_pareto_cap_below_min_rejected(self):
        with pytest.raises(ValueError):
            pareto_population(10, u_min=1.0, shape=2.0, storage_per_upload=2.0, u_cap=0.5)


class TestBoxPopulationClassification:
    def test_upload_deficit(self):
        pop = BoxPopulation([0.5, 0.8, 2.0, 3.0], [1.0, 1.6, 4.0, 6.0])
        assert pop.upload_deficit(1.0) == pytest.approx(0.5 + 0.2)
        assert pop.upload_deficit(2.0) == pytest.approx(1.5 + 1.2)

    def test_poor_and_rich_boxes(self):
        pop = BoxPopulation([0.5, 1.5, 2.0], [1.0, 3.0, 4.0])
        assert pop.poor_boxes(1.2).tolist() == [0]
        assert pop.rich_boxes(1.2).tolist() == [1, 2]

    def test_storage_balance_of_proportional_system(self):
        # d_b / u_b = 2 for all boxes, d/u* = 2 for u* = average upload.
        pop = proportional_population([1.0, 2.0, 3.0], storage_per_upload=2.0)
        assert pop.is_storage_balanced(u_star=pop.average_upload)

    def test_storage_balance_violated_by_small_ratio(self):
        pop = BoxPopulation([2.0, 2.0], [2.0, 8.0])  # first box has d/u = 1 < 2
        assert not pop.is_storage_balanced(u_star=1.5)

    def test_storage_balance_violated_by_large_ratio(self):
        # second box has d/u = 8 > d/u* = 5/1.2
        pop = BoxPopulation([2.0, 1.0], [2.0, 8.0])
        assert not pop.is_storage_balanced(u_star=1.2)

    def test_zero_upload_box_with_storage_unbalanced(self):
        pop = BoxPopulation([0.0, 2.0], [2.0, 4.0])
        assert not pop.is_storage_balanced(u_star=1.5)

    def test_scalability_condition(self):
        rich = homogeneous_population(10, u=1.5, d=3.0)
        assert rich.satisfies_scalability_condition()
        poor = homogeneous_population(10, u=0.9, d=3.0)
        assert not poor.satisfies_scalability_condition()

    def test_scalability_condition_heterogeneous(self):
        # Average 1.25 but deficit Δ(1) = 0.5*5 = 2.5 → threshold 1 + 0.25 = 1.25.
        pop = BoxPopulation([0.5] * 5 + [2.0] * 5, [1.0] * 5 + [4.0] * 5)
        assert not pop.satisfies_scalability_condition()
        pop2 = BoxPopulation([0.5] * 2 + [2.0] * 8, [1.0] * 2 + [4.0] * 8)
        assert pop2.satisfies_scalability_condition()


class TestBoxPopulationConversions:
    def test_scaled_storage(self):
        pop = homogeneous_population(3, u=1.0, d=2.0)
        scaled = pop.scaled_storage(0.5)
        np.testing.assert_allclose(scaled.storages, 1.0)

    def test_truncated_storage_to_ratio(self):
        pop = BoxPopulation([1.0, 2.0], [4.0, 5.0])
        balanced = pop.truncated_storage_to_ratio()
        # tau = min(4/1, 5/2) = 2.5
        np.testing.assert_allclose(balanced.storages, [2.5, 5.0])
        assert balanced.is_proportionally_heterogeneous()

    def test_truncation_requires_some_upload(self):
        pop = BoxPopulation([0.0, 0.0], [1.0, 1.0])
        with pytest.raises(ValueError):
            pop.truncated_storage_to_ratio()

    def test_storage_and_upload_slots(self):
        pop = BoxPopulation([1.3, 0.4], [2.5, 1.0])
        np.testing.assert_array_equal(pop.storage_slots(4), [10, 4])
        np.testing.assert_array_equal(pop.upload_slots(4), [5, 1])

    def test_parameters_builder(self):
        pop = homogeneous_population(20, u=2.0, d=3.0)
        params = pop.parameters(c=4, mu=1.2, k=3)
        assert params.n == 20
        assert params.u == pytest.approx(2.0)
        assert params.m == 20  # 3*20//3

    @given(
        uploads=st.lists(st.floats(0, 10, allow_nan=False), min_size=1, max_size=30),
    )
    def test_deficit_is_monotone_in_threshold(self, uploads):
        storages = [max(u, 0.1) * 2 for u in uploads]
        pop = BoxPopulation(uploads, storages)
        assert pop.upload_deficit(1.0) <= pop.upload_deficit(2.0) + 1e-9

    @given(
        uploads=st.lists(st.floats(0.01, 10, allow_nan=False), min_size=1, max_size=30),
    )
    def test_deficit_zero_when_all_rich(self, uploads):
        pop = BoxPopulation(uploads, [u * 2 for u in uploads])
        threshold = min(uploads)
        assert pop.upload_deficit(threshold) == pytest.approx(0.0, abs=1e-12)
