"""Tests for the ImmediateRequestScheduler ablation and its use in the engine."""

import pytest

from repro.core.allocation import random_permutation_allocation
from repro.core.parameters import homogeneous_population
from repro.core.preloading import Demand, ImmediateRequestScheduler, PreloadingScheduler
from repro.core.video import Catalog
from repro.sim.engine import VodSimulator
from repro.workloads.base import StaticDemandSchedule
from repro.workloads.flashcrowd import FlashCrowdWorkload


@pytest.fixture
def catalog():
    return Catalog(num_videos=6, num_stripes=4, duration=30)


class TestImmediateRequestScheduler:
    def test_all_stripes_requested_at_demand_round(self, catalog):
        scheduler = ImmediateRequestScheduler(catalog)
        requests = scheduler.on_demand(Demand(time=5, box_id=2, video_id=3))
        assert len(requests) == catalog.num_stripes_per_video
        assert all(r.request_time == 5 for r in requests)
        assert all(r.box_id == 2 for r in requests)
        assert {r.stripe_id for r in requests} == set(catalog.stripes_of_video(3).tolist())

    def test_no_postponed_requests(self, catalog):
        scheduler = ImmediateRequestScheduler(catalog)
        scheduler.on_demand(Demand(time=5, box_id=2, video_id=3))
        assert scheduler.requests_due(6) == []
        assert scheduler.requests_due(5) == []

    def test_exactly_one_request_flagged_as_preload(self, catalog):
        scheduler = ImmediateRequestScheduler(catalog)
        requests = scheduler.on_demand(Demand(time=0, box_id=0, video_id=0))
        assert sum(1 for r in requests if r.is_preload) == 1

    def test_start_up_delay_and_demand_log(self, catalog):
        scheduler = ImmediateRequestScheduler(catalog)
        assert scheduler.start_up_delay == 2
        scheduler.on_demand(Demand(time=0, box_id=0, video_id=0))
        assert len(scheduler.demands_seen) == 1
        scheduler.reset()
        assert scheduler.demands_seen == ()

    def test_unknown_video_rejected(self, catalog):
        scheduler = ImmediateRequestScheduler(catalog)
        with pytest.raises(ValueError):
            scheduler.on_demand(Demand(time=0, box_id=0, video_id=99))


class TestEngineWithImmediateScheduler:
    def build(self, u=2.0, seed=0):
        catalog = Catalog(num_videos=12, num_stripes=4, duration=30)
        population = homogeneous_population(36, u=u, d=3.0)
        allocation = random_permutation_allocation(catalog, population, 3, random_state=seed)
        return catalog, allocation

    def test_single_demand_served_with_two_round_delay(self):
        catalog, allocation = self.build()
        scheduler = ImmediateRequestScheduler(catalog)
        sim = VodSimulator(allocation, mu=1.5, scheduler=scheduler)
        result = sim.run(StaticDemandSchedule([Demand(time=1, box_id=0, video_id=2)]), 5)
        assert result.feasible
        starts = result.trace.playback_starts()
        assert len(starts) == 1
        assert starts[0].startup_delay == 2

    def test_ablation_is_never_better_under_flash_crowd(self):
        # On a thin allocation the immediate strategy leaves at least as
        # many requests unserved as the preloading strategy.
        catalog = Catalog(num_videos=10, num_stripes=4, duration=30)
        population = homogeneous_population(40, u=1.2, d=1.5)
        allocation = random_permutation_allocation(catalog, population, 2, random_state=4)
        results = {}
        for name, scheduler in (
            ("preloading", PreloadingScheduler(catalog)),
            ("immediate", ImmediateRequestScheduler(catalog)),
        ):
            sim = VodSimulator(allocation, mu=1.5, scheduler=scheduler)
            workload = FlashCrowdWorkload(mu=1.5, target_videos=(0,), random_state=4)
            results[name] = sim.run(workload, num_rounds=8).metrics.unmatched_requests
        assert results["immediate"] >= results["preloading"]
