"""Tests for box churn / failure injection."""

import numpy as np
import pytest

from repro.core.allocation import random_permutation_allocation
from repro.core.parameters import homogeneous_population
from repro.core.preloading import Demand
from repro.core.video import Catalog
from repro.sim.churn import ChurnSchedule, Outage, random_churn_schedule
from repro.sim.engine import VodSimulator
from repro.workloads.base import StaticDemandSchedule
from repro.workloads.flashcrowd import FlashCrowdWorkload


class TestOutage:
    def test_covers(self):
        outage = Outage(box_id=3, start=2, end=5)
        assert not outage.covers(1)
        assert outage.covers(2)
        assert outage.covers(4)
        assert not outage.covers(5)

    def test_validation(self):
        with pytest.raises(ValueError):
            Outage(box_id=0, start=5, end=5)
        with pytest.raises(ValueError):
            Outage(box_id=-1, start=0, end=1)


class TestChurnSchedule:
    def test_offline_boxes(self):
        schedule = ChurnSchedule([Outage(0, 1, 3), Outage(2, 2, 4)])
        assert schedule.offline_boxes(0) == set()
        assert schedule.offline_boxes(1) == {0}
        assert schedule.offline_boxes(2) == {0, 2}
        assert schedule.offline_boxes(3) == {2}
        assert len(schedule) == 2

    def test_is_offline_and_fraction(self):
        schedule = ChurnSchedule([Outage(1, 0, 10)])
        assert schedule.is_offline(1, 5)
        assert not schedule.is_offline(0, 5)
        assert schedule.offline_fraction(5, num_boxes=10) == pytest.approx(0.1)

    def test_add_and_max_concurrent(self):
        schedule = ChurnSchedule()
        schedule.add(Outage(0, 0, 5))
        schedule.add(Outage(1, 3, 6))
        assert schedule.max_concurrent_outages(horizon=10) == 2

    def test_random_schedule_properties(self):
        schedule = random_churn_schedule(
            num_boxes=20, horizon=30, failure_probability=0.1, outage_duration=5,
            random_state=0, protected_boxes=[0, 1],
        )
        for outage in schedule.outages:
            assert outage.box_id not in (0, 1)
            assert outage.end - outage.start == 5
        # A box is never scheduled for two overlapping outages.
        for box in range(20):
            own = sorted(o for o in schedule.outages if o.box_id == box)
            for first, second in zip(own, own[1:]):
                assert second.start >= first.end

    def test_random_schedule_deterministic(self):
        a = random_churn_schedule(10, 20, 0.2, 3, random_state=5)
        b = random_churn_schedule(10, 20, 0.2, 3, random_state=5)
        assert a.outages == b.outages

    def test_zero_probability_gives_empty_schedule(self):
        schedule = random_churn_schedule(10, 20, 0.0, 3, random_state=5)
        assert len(schedule) == 0


class TestEngineWithChurn:
    def build(self, k=4, seed=0):
        catalog = Catalog(num_videos=15, num_stripes=4, duration=30)
        population = homogeneous_population(40, u=2.0, d=3.0)
        allocation = random_permutation_allocation(catalog, population, k, random_state=seed)
        return catalog, population, allocation

    def test_offline_boxes_do_not_demand(self):
        catalog, population, allocation = self.build()
        churn = ChurnSchedule([Outage(box_id=0, start=0, end=10)])
        sim = VodSimulator(allocation, mu=1.5, churn=churn)
        schedule = StaticDemandSchedule([Demand(time=1, box_id=0, video_id=2)])
        result = sim.run(schedule, num_rounds=5)
        assert result.metrics.total_demands == 0

    def test_offline_boxes_do_not_serve(self):
        catalog, population, allocation = self.build()
        # Take the holders of stripe 0 offline and let another box request it:
        holders = allocation.boxes_with_stripe(0)
        requester = next(b for b in range(population.n) if b not in set(holders.tolist()))
        churn = ChurnSchedule([Outage(int(b), 0, 20) for b in holders])
        sim = VodSimulator(allocation, mu=1.5, churn=churn, record_connections=True)
        video = catalog.video_of_stripe(0)
        schedule = StaticDemandSchedule([Demand(time=1, box_id=requester, video_id=video)])
        result = sim.run(schedule, num_rounds=5)
        # The stripe-0 request cannot be served while all its holders are down.
        assert not result.feasible
        for event in result.trace.connections():
            assert event.server_box not in set(int(b) for b in holders)

    def test_moderate_churn_is_tolerated(self):
        catalog, population, allocation = self.build(k=4, seed=2)
        churn = random_churn_schedule(
            num_boxes=population.n, horizon=12, failure_probability=0.02,
            outage_duration=3, random_state=3,
        )
        sim = VodSimulator(allocation, mu=1.5, churn=churn)
        result = sim.run(FlashCrowdWorkload(mu=1.5, random_state=3), num_rounds=12)
        assert result.feasible

    def test_massive_churn_breaks_the_system(self):
        catalog, population, allocation = self.build(k=2, seed=2)
        # Take 80% of the boxes down for the whole run.
        churn = ChurnSchedule([Outage(b, 0, 30) for b in range(8, population.n)])
        sim = VodSimulator(allocation, mu=2.0, churn=churn, stop_on_infeasible=True)
        result = sim.run(FlashCrowdWorkload(mu=2.0, random_state=4), num_rounds=10)
        assert not result.feasible

    def test_no_churn_argument_is_equivalent_to_empty_schedule(self):
        catalog, population, allocation = self.build(seed=5)
        workload_a = FlashCrowdWorkload(mu=1.5, random_state=6)
        workload_b = FlashCrowdWorkload(mu=1.5, random_state=6)
        plain = VodSimulator(allocation, mu=1.5).run(workload_a, num_rounds=8)
        empty = VodSimulator(allocation, mu=1.5, churn=ChurnSchedule()).run(
            workload_b, num_rounds=8
        )
        assert plain.metrics.describe() == empty.metrics.describe()
