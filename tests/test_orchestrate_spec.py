"""Campaign spec resolution and content-addressed cell keys."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.orchestrate.spec import (
    STORE_FORMAT_VERSION,
    CampaignSpec,
    CellSpec,
    canonical_json,
    cell_key,
)


def make_spec(**overrides):
    kwargs = dict(
        name="demo",
        description="a demo sweep",
        runner="echo",
        base={"n": 10, "mu": 1.5},
        grid={"u": (1.5, 2.0), "k": (2, 4)},
        paper_claim="none",
        columns=("u", "k"),
        benchmark="bench_demo.py",
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestResolution:
    def test_grid_product_order(self):
        cells = make_spec().cells()
        assert [c.params for c in cells] == [
            {"n": 10, "mu": 1.5, "u": 1.5, "k": 2},
            {"n": 10, "mu": 1.5, "u": 1.5, "k": 4},
            {"n": 10, "mu": 1.5, "u": 2.0, "k": 2},
            {"n": 10, "mu": 1.5, "u": 2.0, "k": 4},
        ]

    def test_points_follow_grid_and_merge_over_base(self):
        spec = make_spec(points=({"u": 9.0, "extra": True},))
        cells = spec.cells()
        assert len(cells) == 5
        assert cells[-1].params == {"n": 10, "mu": 1.5, "u": 9.0, "extra": True}

    def test_points_only_campaign_has_no_base_cell(self):
        spec = make_spec(grid={}, points=({"k": 1}, {"k": 2}))
        assert [c.params["k"] for c in spec.cells()] == [1, 2]

    def test_empty_campaign_resolves_to_single_base_cell(self):
        spec = make_spec(grid={}, points=())
        cells = spec.cells()
        assert len(cells) == 1
        assert cells[0].params == {"n": 10, "mu": 1.5}

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="has no values"):
            make_spec(grid={"u": ()})

    def test_axis_values_reports_varied_params_only(self):
        spec = make_spec(points=({"extra": 1},))
        grid_cell = spec.cells()[0]
        assert spec.axis_values(grid_cell) == {"u": 1.5, "k": 2}
        point_cell = spec.cells()[-1]
        assert point_cell.params["extra"] == 1
        assert "n" not in spec.axis_values(point_cell)


class TestCellKey:
    def test_key_is_order_insensitive_and_hex(self):
        key = cell_key("r", {"a": 1, "b": 2.5})
        assert key == cell_key("r", {"b": 2.5, "a": 1})
        assert len(key) == 64
        int(key, 16)

    def test_key_depends_on_runner_params_and_format(self):
        base = cell_key("r", {"a": 1})
        assert cell_key("other", {"a": 1}) != base
        assert cell_key("r", {"a": 2}) != base
        assert cell_key("r", {"a": 1, "b": 0}) != base

    def test_numpy_scalars_hash_like_natives(self):
        assert cell_key("r", {"a": np.int64(3), "b": np.float64(1.5)}) == cell_key(
            "r", {"a": 3, "b": 1.5}
        )

    def test_unserializable_params_rejected(self):
        with pytest.raises(TypeError):
            cell_key("r", {"a": object()})

    def test_key_stable_across_processes(self):
        """Same spec ⇒ same cell key in a fresh interpreter (ISSUE criterion)."""
        params = {"u": 2.0, "n": 10_000, "label": "x", "flags": [1, 2]}
        script = (
            "from repro.orchestrate.spec import cell_key;"
            f"print(cell_key('threshold_design', {params!r}))"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env=env,
        )
        assert out.stdout.strip() == cell_key("threshold_design", params)

    def test_campaign_cell_keys_match_cells(self):
        spec = make_spec()
        assert spec.cell_keys() == [c.key for c in spec.cells()]


class TestSerialization:
    def test_round_trip_preserves_cells(self):
        spec = make_spec(points=({"u": 9.0},))
        clone = CampaignSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.cell_keys() == spec.cell_keys()

    def test_canonical_json_is_compact_and_sorted(self):
        assert canonical_json({"b": 1, "a": (1, 2)}) == '{"a":[1,2],"b":1}'

    def test_store_format_version_in_key(self):
        payload = {
            "store_format": STORE_FORMAT_VERSION,
            "runner": "r",
            "params": {"a": 1},
        }
        import hashlib

        expected = hashlib.sha256(canonical_json(payload).encode()).hexdigest()
        assert cell_key("r", {"a": 1}) == expected

    def test_validation(self):
        with pytest.raises(ValueError, match="name"):
            make_spec(name="")
        with pytest.raises(ValueError, match="runner"):
            make_spec(runner="")

    def test_cellspec_label_is_canonical(self):
        cell = CellSpec(runner="r", params={"b": 1, "a": 2})
        assert cell.label() == '{"a":2,"b":1}'
