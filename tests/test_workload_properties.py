"""Statistical property tests for the workload-realism generators.

Distribution-level pinning of the Zipf / drift / flash-rotation / trace
generators, beyond the digest pins of the golden suite:

* the Zipf sampler's empirical rank-frequency curve matches the
  configured ``alpha`` — Kolmogorov–Smirnov distance inside a DKW bound
  and a chi-square statistic inside its concentration bound, plus an
  exact weight-space slope identity sweep under hypothesis;
* per-round arrival counts are Poisson — mean and variance/mean (Fano)
  agreement within seeded, non-flaky tolerances;
* the drift schedule preserves total popularity mass exactly (each epoch
  is a pure permutation of the stationary weights);
* the streaming trace reader agrees record-for-record with an
  independent in-memory decode of the committed fixture, and the
  write/read round-trip is lossless on hypothesis-generated traces.

Every hypothesis suite runs 200+ examples, derandomized (fixed seeds);
the heavy Monte-Carlo checks use one pinned seed each, and their bounds
are wide enough (4–6 sigma / DKW at alpha = 1e-3) that a pass is a
property of the distribution, not of the seed.
"""

from __future__ import annotations

import math
import struct
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.workloads.drift import DriftingZipfWorkload, FlashRotationWorkload
from repro.workloads.popularity import ZipfDemandWorkload, zipf_weights
from repro.core.allocation import random_permutation_allocation
from repro.core.parameters import homogeneous_population
from repro.core.video import Catalog
from repro.sim.swarm import SwarmRegistry
from repro.workloads.base import SystemView
from repro.workloads.trace import (
    TRACE_MAGIC,
    iter_trace,
    load_trace,
    read_trace_header,
    resolve_trace_path,
    write_trace,
)


def make_view(time=0, n=30, m=20, c=4, u=1.5, d=3.0, k=3, mu=2.0, seed=0, free=None):
    catalog = Catalog(num_videos=m, num_stripes=c, duration=25)
    population = homogeneous_population(n, u=u, d=d)
    allocation = random_permutation_allocation(catalog, population, k, random_state=seed)
    swarms = SwarmRegistry(mu=mu, duration=25)
    return SystemView(
        time=time,
        catalog=catalog,
        allocation=allocation,
        population=population,
        swarms=swarms,
        free_boxes=np.arange(n if free is None else free, dtype=np.int64),
    )

_SETTINGS = settings(
    max_examples=200,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: The committed fixture replayed by the trace_replay scenario.
FIXTURE = "zipf_small"
FIXTURE_VIDEOS = 16
FIXTURE_EVENTS = 82


def _collect_videos(workload, *, rounds, n, m, seed):
    """All video ids a generator emits over ``rounds`` rounds."""
    videos = []
    for time in range(rounds):
        view = make_view(time=time, n=n, m=m, seed=seed)
        _, vids = workload.demand_arrays_for_round(view)
        videos.extend(vids.tolist())
    return np.asarray(videos, dtype=np.int64)


def _collect_counts(workload, *, rounds, n, m, seed):
    """Per-round arrival counts over ``rounds`` rounds."""
    counts = []
    for time in range(rounds):
        view = make_view(time=time, n=n, m=m, seed=seed)
        boxes, _ = workload.demand_arrays_for_round(view)
        counts.append(boxes.size)
    return np.asarray(counts, dtype=np.int64)


class TestZipfRankFrequency:
    """The empirical popularity law matches the configured exponent."""

    @pytest.mark.parametrize("alpha", [0.8, 1.2])
    def test_ks_distance_within_dkw_bound(self, alpha):
        m = 20
        workload = ZipfDemandWorkload(
            arrival_rate=15.0, exponent=alpha, random_state=321
        )
        videos = _collect_videos(workload, rounds=400, n=400, m=m, seed=1)
        n_samples = videos.size
        assert n_samples >= 5000
        empirical_cdf = np.cumsum(np.bincount(videos, minlength=m)) / n_samples
        theoretical_cdf = np.cumsum(zipf_weights(m, alpha))
        ks = float(np.max(np.abs(empirical_cdf - theoretical_cdf)))
        # DKW: P(KS > eps) <= 2 exp(-2 n eps^2); eps for alpha = 1e-3.
        eps = math.sqrt(math.log(2.0 / 1e-3) / (2.0 * n_samples))
        assert ks <= eps, f"KS {ks:.4f} exceeds DKW bound {eps:.4f} at n={n_samples}"

    @pytest.mark.parametrize("alpha", [0.8, 1.2])
    def test_chi_square_within_concentration_bound(self, alpha):
        m = 20
        workload = ZipfDemandWorkload(
            arrival_rate=15.0, exponent=alpha, random_state=654
        )
        videos = _collect_videos(workload, rounds=400, n=400, m=m, seed=2)
        n_samples = videos.size
        observed = np.bincount(videos, minlength=m).astype(np.float64)
        expected = zipf_weights(m, alpha) * n_samples
        assert expected.min() >= 5.0  # the classic chi-square validity floor
        statistic = float(np.sum((observed - expected) ** 2 / expected))
        # chi2(df) has mean df and variance 2 df; 6 sigma is far beyond
        # any plausible seed fluctuation while still catching a wrong
        # exponent (which inflates the statistic by O(n)).
        df = m - 1
        assert statistic <= df + 6.0 * math.sqrt(2.0 * df), (
            f"chi-square {statistic:.1f} too large for df={df}: the sampler "
            f"does not follow zipf_weights({m}, {alpha})"
        )

    def test_wrong_exponent_is_rejected_by_the_same_bounds(self):
        """The bounds above have power: alpha=0.8 samples fail the 1.4 law."""
        m = 20
        workload = ZipfDemandWorkload(
            arrival_rate=15.0, exponent=0.8, random_state=321
        )
        videos = _collect_videos(workload, rounds=400, n=400, m=m, seed=1)
        n_samples = videos.size
        observed = np.bincount(videos, minlength=m).astype(np.float64)
        wrong = zipf_weights(m, 1.4) * n_samples
        statistic = float(np.sum((observed - wrong) ** 2 / wrong))
        df = m - 1
        assert statistic > df + 6.0 * math.sqrt(2.0 * df)

    def test_log_log_slope_matches_alpha(self):
        alpha, m = 1.0, 20
        workload = ZipfDemandWorkload(
            arrival_rate=15.0, exponent=alpha, random_state=987
        )
        videos = _collect_videos(workload, rounds=400, n=400, m=m, seed=3)
        counts = np.bincount(videos, minlength=m).astype(np.float64)
        # Regress log-frequency on log-rank over the well-sampled head.
        head = counts[:10]
        assert head.min() > 50
        log_rank = np.log(np.arange(1, head.size + 1, dtype=np.float64))
        log_freq = np.log(head / videos.size)
        slope = float(np.polyfit(log_rank, log_freq, 1)[0])
        assert abs(slope + alpha) < 0.15, (
            f"rank-frequency slope {slope:.3f} should be about {-alpha}"
        )

    @given(
        m=st.integers(min_value=2, max_value=400),
        alpha=st.floats(min_value=0.05, max_value=3.0),
        i=st.integers(min_value=0, max_value=399),
        j=st.integers(min_value=0, max_value=399),
    )
    @_SETTINGS
    def test_weight_space_slope_identity(self, m, alpha, i, j):
        """Exact law: log(w_i/w_j) = -alpha * log((i+1)/(j+1)), sum == 1."""
        i, j = i % m, j % m
        w = zipf_weights(m, alpha)
        assert w.shape == (m,)
        assert math.isclose(float(w.sum()), 1.0, rel_tol=0, abs_tol=1e-12)
        assert np.all(np.diff(w) <= 0)
        expected = -alpha * math.log((i + 1) / (j + 1))
        assert math.isclose(
            math.log(w[i] / w[j]), expected, rel_tol=1e-9, abs_tol=1e-9
        )


class TestPoissonArrivals:
    """Per-round arrival counts follow the configured Poisson law."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda rate, seed: ZipfDemandWorkload(rate, exponent=0.8, random_state=seed),
            lambda rate, seed: DriftingZipfWorkload(
                rate, exponent=0.8, drift_period=7, random_state=seed
            ),
            lambda rate, seed: FlashRotationWorkload(
                rate, hot_videos=4, rotation_period=5, boost=6.0, random_state=seed
            ),
        ],
        ids=["zipf", "drift", "flash_rotation"],
    )
    def test_mean_and_fano_factor(self, factory):
        rate, rounds = 6.0, 600
        counts = _collect_counts(
            factory(rate, 777), rounds=rounds, n=200, m=20, seed=4
        )
        # n=200 free boxes vs rate 6: truncation is astronomically rare,
        # so the counts are untruncated Poisson(rate) draws.
        mean = float(counts.mean())
        sigma_of_mean = math.sqrt(rate / rounds)
        assert abs(mean - rate) <= 5.0 * sigma_of_mean, (
            f"mean arrivals {mean:.3f} not within 5 sigma of rate {rate}"
        )
        fano = float(counts.var()) / mean
        # Var(sample Fano) ~ 2/rounds for Poisson; 5 sigma again.
        assert abs(fano - 1.0) <= 5.0 * math.sqrt(2.0 / rounds), (
            f"Fano factor {fano:.3f} is not Poisson-like"
        )

    def test_counts_truncate_to_free_boxes(self):
        workload = ZipfDemandWorkload(50.0, exponent=0.8, random_state=5)
        view = make_view(time=0, n=200, m=20, seed=5, free=4)
        boxes, videos = workload.demand_arrays_for_round(view)
        assert boxes.size == videos.size <= 4
        assert np.unique(boxes).size == boxes.size  # distinct requesters


class TestDriftMassPreservation:
    @given(
        m=st.integers(min_value=2, max_value=60),
        alpha=st.floats(min_value=0.1, max_value=2.0),
        period=st.integers(min_value=1, max_value=6),
        epochs=st.integers(min_value=0, max_value=5),
    )
    @_SETTINGS
    def test_every_epoch_is_a_permutation_of_the_stationary_law(
        self, m, alpha, period, epochs
    ):
        workload = DriftingZipfWorkload(
            3.0, exponent=alpha, drift_period=period, random_state=9
        )
        workload._refresh_weights(m, epochs * period)
        weights = workload.current_weights
        base = zipf_weights(m, alpha)
        assert math.isclose(float(weights.sum()), 1.0, rel_tol=0, abs_tol=1e-12)
        np.testing.assert_array_equal(np.sort(weights), np.sort(base))

    def test_epoch_zero_is_the_identity_ranking(self):
        workload = DriftingZipfWorkload(3.0, exponent=1.0, drift_period=4, random_state=9)
        workload._refresh_weights(12, 0)
        np.testing.assert_array_equal(workload.current_weights, zipf_weights(12, 1.0))

    def test_drift_actually_reshuffles(self):
        workload = DriftingZipfWorkload(3.0, exponent=1.0, drift_period=4, random_state=9)
        workload._refresh_weights(12, 0)
        first = workload.current_weights
        workload._refresh_weights(12, 4)
        second = workload.current_weights
        assert not np.array_equal(first, second)

    @given(
        m=st.integers(min_value=2, max_value=40),
        hot=st.integers(min_value=1, max_value=8),
        period=st.integers(min_value=1, max_value=6),
        time=st.integers(min_value=0, max_value=200),
    )
    @_SETTINGS
    def test_flash_rotation_weights_are_normalized_and_boosted(
        self, m, hot, period, time
    ):
        hot = min(hot, m)
        workload = FlashRotationWorkload(
            3.0, hot_videos=hot, rotation_period=period, boost=6.0, random_state=9
        )
        weights = workload._weights(time, m)
        assert math.isclose(float(weights.sum()), 1.0, rel_tol=0, abs_tol=1e-12)
        hot_set = workload.hot_set(time, m)
        assert hot_set.size == hot
        cold = np.setdiff1d(np.arange(m), hot_set)
        if cold.size:
            assert math.isclose(
                float(weights[hot_set[0]] / weights[cold[0]]), 6.0, rel_tol=1e-12
            )

    def test_rotation_sweeps_the_catalog(self):
        m, hot, period = 12, 3, 2
        workload = FlashRotationWorkload(
            3.0, hot_videos=hot, rotation_period=period, boost=4.0, random_state=9
        )
        covered = set()
        for time in range(0, period * (m // hot), period):
            covered.update(workload.hot_set(time, m).tolist())
        assert covered == set(range(m))


class TestTraceReader:
    def test_streaming_reader_matches_independent_in_memory_decode(self):
        """iter_trace ≡ a one-shot struct decode of the committed fixture."""
        path = Path(resolve_trace_path(FIXTURE))
        raw = path.read_bytes()
        magic, version, _reserved, num_videos, num_events = struct.unpack_from(
            "<4sHHIQ", raw, 0
        )
        assert magic == TRACE_MAGIC and version == 1
        assert num_videos == FIXTURE_VIDEOS and num_events == FIXTURE_EVENTS
        flat = np.frombuffer(raw[20:], dtype="<u4").reshape(num_events, 2)
        reference = [(int(t), int(v)) for t, v in flat]
        assert list(iter_trace(str(path))) == reference
        header, events = load_trace(str(path))
        assert (header.num_videos, header.num_events) == (num_videos, num_events)
        assert events == reference

    def test_fixture_is_well_formed(self):
        header, events = load_trace(resolve_trace_path(FIXTURE))
        times = [t for t, _ in events]
        assert times == sorted(times)
        assert all(0 <= v < header.num_videos for _, v in events)

    @given(
        deltas=st.lists(st.integers(min_value=0, max_value=3), max_size=40),
        videos=st.lists(st.integers(min_value=0, max_value=9), max_size=40),
    )
    @_SETTINGS
    def test_write_read_round_trip(self, deltas, videos, tmp_path_factory):
        size = min(len(deltas), len(videos))
        times = np.cumsum(deltas[:size]).tolist()
        events = list(zip(times, videos[:size]))
        path = tmp_path_factory.mktemp("trace") / "roundtrip.trace"
        assert write_trace(str(path), events, num_videos=10) == size
        header = read_trace_header(str(path))
        assert (header.num_videos, header.num_events) == (10, size)
        assert list(iter_trace(str(path))) == [(int(t), int(v)) for t, v in events]

    def test_streaming_is_chunked(self, tmp_path, monkeypatch):
        """A trace longer than one chunk decodes across several reads."""
        import repro.workloads.trace as trace_mod

        monkeypatch.setattr(trace_mod, "CHUNK_EVENTS", 7)
        events = [(t // 3, t % 5) for t in range(100)]
        path = tmp_path / "long.trace"
        write_trace(str(path), events, num_videos=5)
        assert list(iter_trace(str(path))) == events


class TestEngineCrossCoverage:
    """The new workloads run under the newer engines, not just the round one."""

    def test_zipf_steady_event_engine_crosscheck(self):
        from repro.events.crosscheck import crosscheck_scenario

        report = crosscheck_scenario("zipf_steady", seed=42, rounds=10)
        assert report.matched, "\n".join(report.mismatches)

    def test_zipf_drift_two_shard_inline_digest_parity(self):
        from repro.scenarios.replay import run_scenario

        single = run_scenario("zipf_drift", seed=42, num_rounds=12)
        sharded = run_scenario(
            "zipf_drift", seed=42, num_rounds=12, n_shards=2, shard_host="inline"
        )
        assert sharded.digest == single.digest
        assert sharded.round_records == single.round_records
        assert sharded.summary == single.summary
