"""A/B parity tests for the incremental dynamic-matching layer.

The engine's incremental path repairs each round's delta (expirations,
arrivals, churn/fault capacity changes) instead of re-solving the whole
instance; it must be *observationally identical* to the full per-round
solve.  Comparing an incremental run against a
``set_incremental_matching(False)`` run of the same ``(spec, seed)`` pins
the per-round records (matched/unmatched counts, feasibility, upload
usage) bit for bit — across every registered scenario, including the
``chaos_*`` fault injections.

One caveat keeps the full-run digest comparison conditional: in a round
that leaves requests unmatched, two equally-maximum matchings may strand
*different* requests, which shifts individual start-up delays and hence
the summary's ``mean_startup_delay`` even though every per-round record
is identical (maximum matchings are not unique; the paper's claims are
cardinality-level).  When every round matches all of its requests the
serving schedule is forced, so there the full digest must agree too.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api.session import VodSession
from repro.scenarios.build import build_scenario
from repro.scenarios.registry import get_scenario, scenario_names
from repro.scenarios.replay import digest_result

#: Round caps for the heavyweight scale tiers — their full-solve
#: baselines run at seconds per round from cold; two rounds are enough
#: to cross the warm-start + repair path at that size.  Everything else
#: runs its registered horizon capped at 20 rounds.
_ROUND_CAPS = {"scale_tier_10k": 8, "scale_tier_100k": 2, "scale_tier_500k": 2}

#: Tiers whose build alone (allocation draw over millions of boxes) is too
#: heavy for this sweep; the sharded-engine suite covers their wiring.
_SWEEP_EXCLUDED = {"scale_tier_2m"}


def _sweep_names():
    return [name for name in scenario_names() if name not in _SWEEP_EXCLUDED]


def _rounds_for(name: str) -> int:
    spec = get_scenario(name)
    return min(spec.horizon, _ROUND_CAPS.get(name, 20))


def _run_scenario(name: str, seed: int, rounds: int, incremental: bool):
    """Run ``(name, seed)`` for ``rounds`` and return (ScenarioRun, simulator)."""
    spec = get_scenario(name)
    compiled = build_scenario(spec, seed=seed, min_horizon=rounds)
    compiled.simulator.set_incremental_matching(incremental)
    result = compiled.run(rounds)
    return digest_result(spec, compiled.seed, rounds, result), compiled.simulator


def _assert_parity(run_inc, run_full) -> None:
    """Assert incremental ≡ full-solve at the claim level.

    Per-round records must always match.  The full digest additionally
    hashes the start-up-delay summary, which is only forced when every
    round matched all of its requests (see module docstring).
    """
    assert run_inc.round_records == run_full.round_records
    if all(rec["unmatched"] == 0 for rec in run_full.round_records):
        assert run_inc.digest == run_full.digest


@pytest.mark.parametrize("name", _sweep_names())
def test_incremental_equals_full_solve(name):
    """Incremental repair reproduces the full solve on every scenario."""
    rounds = _rounds_for(name)
    run_inc, sim = _run_scenario(name, 1234, rounds, incremental=True)
    run_full, _ = _run_scenario(name, 1234, rounds, incremental=False)
    _assert_parity(run_inc, run_full)
    assert sim.incremental_matching


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 2**16), rounds=st.integers(4, 18))
def test_repair_equals_cold_solve_randomized(seed, rounds):
    """Random seeds/horizons on the churn-heavy scenario stay bit-equal.

    ``churn_storm`` retires matched pairs via outages every round, so the
    repair path (stale retirement, over-capacity drops, greedy + exact
    augmentation) is exercised far from the steady state.
    """
    run_inc, _ = _run_scenario("churn_storm", seed, rounds, incremental=True)
    run_full, _ = _run_scenario("churn_storm", seed, rounds, incremental=False)
    _assert_parity(run_inc, run_full)


def test_snapshot_restore_mid_repair_parity():
    """A snapshot taken mid-run (repair state live) restores bit-identically."""
    name, seed = "churn_storm", 77
    spec = get_scenario(name)
    rounds = min(spec.horizon, 16)
    session = build_scenario(spec, seed=seed, min_horizon=rounds).session(
        horizon=rounds
    )
    session.step_until(round=rounds // 2)
    restored = VodSession.restore(session.snapshot())
    tail_a = session.step_until(round=rounds)
    tail_b = restored.step_until(round=rounds)
    assert [r.to_dict() for r in tail_a] == [r.to_dict() for r in tail_b]
    digest_a = digest_result(spec, seed, rounds, session.result()).digest
    digest_b = digest_result(spec, seed, rounds, restored.result()).digest
    assert digest_a == digest_b


def test_zero_search_budget_forces_fallback_and_stays_equal():
    """With no search budget the repair gives up — and the fallback is exact.

    ``set_repair_search_budget(0)`` makes any round whose greedy leaves a
    deficit fall back to the full kernel; those rounds must be counted in
    the engine's ``repair_fallback_rounds`` and the run must still match
    a non-incremental run record for record.  ``near_threshold_load``
    runs at the edge of Lemma 1 feasibility, so its greedy reliably
    strands requests whose cached candidate boxes saturate.
    """
    name, seed = "near_threshold_load", 9
    spec = get_scenario(name)
    rounds = min(spec.horizon, 16)
    forced = build_scenario(spec, seed=seed, min_horizon=rounds)
    forced.simulator.matcher.set_repair_search_budget(0)
    result_forced = forced.run(rounds)
    assert forced.simulator.repair_fallback_rounds > 0
    baseline = build_scenario(spec, seed=seed, min_horizon=rounds)
    baseline.simulator.set_incremental_matching(False)
    result_base = baseline.run(rounds)
    run_forced = digest_result(spec, seed, rounds, result_forced)
    run_base = digest_result(spec, seed, rounds, result_base)
    _assert_parity(run_forced, run_base)


def test_disable_toggle_resets_incremental_state():
    """Toggling the path off mid-session drops the repair bookkeeping."""
    spec = get_scenario("steady_state")
    rounds = min(spec.horizon, 12)
    session = build_scenario(spec, seed=3, min_horizon=rounds).session(
        horizon=rounds
    )
    session.step_until(round=rounds // 2)
    engine = session.engine
    engine.set_incremental_matching(False)
    assert not engine.incremental_matching
    reports = session.step_until(round=rounds)
    assert all(r.repair_fallback == 0 for r in reports)
    engine.set_incremental_matching(True)
    assert engine.incremental_matching
