"""The scenario-level fault-injection layer: plans, drivers, degradation.

Covers the determinism contract (same spec + seed ⇒ same fault events ⇒
same run digest), batch/session parity for faulted runs, snapshot
recovery *through* a fault window, and the solver-budget degradation
chain (budget trip → Dinic fallback → identical metrics → `degraded`
flags → optional admission shedding).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.api import AdmissionError, VodSession
from repro.core.matching import ConnectionMatcher
from repro.faults.plan import (
    FAULT_KINDS,
    FaultDriver,
    FaultEvent,
    box_crash_plan,
    build_fault_driver,
)
from repro.flow.hopcroft_karp import AugmentationBudgetExceeded, hopcroft_karp_matching
from repro.scenarios.build import build_scenario
from repro.scenarios.registry import get_scenario
from repro.scenarios.replay import _round_records, _summary, run_scenario
from repro.scenarios.spec import FaultSpec, ScenarioSpec

CHAOS_NAMES = ("chaos_box_crash", "chaos_brownout", "chaos_degraded_solver")


def _with_faults(base_name: str, *faults: FaultSpec) -> ScenarioSpec:
    return dataclasses.replace(get_scenario(base_name), faults=tuple(faults))


# ---------------------------------------------------------------------- #
# Specs and events
# ---------------------------------------------------------------------- #
def test_fault_spec_roundtrips_through_dict():
    spec = _with_faults(
        "steady_state", FaultSpec("box_crash", {"start": 2, "fraction": 0.2})
    )
    restored = ScenarioSpec.from_dict(spec.to_dict())
    assert restored == spec
    assert restored.faults[0].kind == "box_crash"


def test_fault_free_spec_dict_has_no_faults_key():
    # Golden compatibility: adding the faults field must not change the
    # serialized form (and therefore the digests) of fault-free specs.
    assert "faults" not in get_scenario("steady_state").to_dict()


def test_fault_spec_rejects_empty_kind():
    with pytest.raises(ValueError, match="kind"):
        FaultSpec("", {})


def test_fault_event_validates_action_and_time():
    with pytest.raises(ValueError, match="action"):
        FaultEvent(0, "reboot")
    with pytest.raises(ValueError, match="time"):
        FaultEvent(-1, "set_capacity")


def test_box_crash_plan_pairs_crash_with_rejoin():
    population = build_scenario(get_scenario("steady_state"), seed=0).population
    plan = box_crash_plan(
        {"start": 2, "duration": 3, "boxes": [5, 7]},
        population,
        horizon=24,
        rng=np.random.default_rng(0),
    )
    crash = [e for e in plan.events if e.time == 2]
    rejoin = [e for e in plan.events if e.time == 5]
    assert {e.box_id for e in crash} == {5, 7}
    assert all(e.value == 0.0 for e in crash)
    assert {e.box_id for e in rejoin} == {5, 7}
    assert all(e.value == float(population.uploads[e.box_id]) for e in rejoin)


def test_fault_window_beyond_horizon_rejected():
    spec = _with_faults("steady_state", FaultSpec("box_crash", {"start": 99}))
    with pytest.raises(ValueError, match="horizon"):
        build_scenario(spec, seed=0)


def test_build_fault_driver_requires_one_rng_per_spec():
    population = build_scenario(get_scenario("steady_state"), seed=0).population
    with pytest.raises(ValueError, match="one rng per fault spec"):
        build_fault_driver(
            (FaultSpec("box_crash", {}),), population, 24, rngs=[]
        )


def test_all_fault_kinds_are_registered_components():
    from repro.api.registry import available_components

    assert set(FAULT_KINDS) <= set(available_components("fault")["fault"])


# ---------------------------------------------------------------------- #
# Determinism and parity
# ---------------------------------------------------------------------- #
def test_fault_plans_are_seed_deterministic():
    spec = _with_faults(
        "steady_state", FaultSpec("box_crash", {"start": 2, "fraction": 0.2})
    )
    a = build_scenario(spec, seed=7).fault_driver.events
    b = build_scenario(spec, seed=7).fault_driver.events
    c = build_scenario(spec, seed=8).fault_driver.events
    assert a == b
    assert a != c  # different seed draws different boxes


def test_adding_faults_keeps_prior_streams_untouched():
    # The fault streams are spawned after all pre-existing ones, so the
    # faulted population must equal the fault-free population draw.
    base = get_scenario("steady_state")
    faulted = _with_faults("steady_state", FaultSpec("brownout", {"start": 2}))
    p0 = build_scenario(base, seed=11).population
    p1 = build_scenario(faulted, seed=11).population
    assert np.array_equal(p0.uploads, p1.uploads)
    assert np.array_equal(p0.storages, p1.storages)


@pytest.mark.parametrize("name", CHAOS_NAMES)
def test_faulted_batch_run_equals_stepped_session(name):
    spec = get_scenario(name)
    batch = build_scenario(spec, seed=3).run()
    session = build_scenario(spec, seed=3).session()
    stepped = session.run_to_horizon()
    assert _round_records(batch) == _round_records(stepped)
    assert _summary(batch) == _summary(stepped)


def test_crash_burst_changes_metrics_but_replays_identically():
    spec = get_scenario("chaos_box_crash")
    run_a = run_scenario(spec, seed=5)
    run_b = run_scenario(spec, seed=5)
    fault_free = run_scenario(dataclasses.replace(spec, faults=()), seed=5)
    assert run_a.digest == run_b.digest
    assert run_a.digest != fault_free.digest


def test_snapshot_restore_through_fault_window():
    # Checkpoint *inside* the crash window: the restored continuation
    # must replay the remaining fault events (including the rejoins).
    spec = get_scenario("chaos_box_crash")
    baseline = build_scenario(spec, seed=2).session()
    baseline.step_until(round=spec.horizon)
    expected = [r.to_dict() for r in baseline.reports]

    interrupted = build_scenario(spec, seed=2).session()
    interrupted.step_until(round=6)  # crash at 4, rejoin at 8
    restored = VodSession.restore(interrupted.snapshot())
    restored.step_until(round=spec.horizon)
    assert [r.to_dict() for r in restored.reports] == expected


# ---------------------------------------------------------------------- #
# Solver-budget degradation
# ---------------------------------------------------------------------- #
def test_hopcroft_karp_budget_raises_typed_error():
    # A 2x2 crossing where the greedy pass picks the blocking edges:
    # finishing needs augmenting-path searches, which budget 0 forbids.
    # CSR for adjacency [[0, 1], [0]]:
    indptr, indices = [0, 2, 3], [0, 1, 0]
    with pytest.raises(AugmentationBudgetExceeded):
        hopcroft_karp_matching(
            2, 2, indptr, indices, right_capacities=[1, 1], augmentation_budget=0
        )
    # The same instance solves fine without a budget.
    result = hopcroft_karp_matching(2, 2, indptr, indices, right_capacities=[1, 1])
    assert result.matched == 2


def test_hopcroft_karp_budget_validation():
    with pytest.raises(ValueError, match="augmentation_budget"):
        hopcroft_karp_matching(1, 1, [0, 1], [0], [1], augmentation_budget=-1)


def test_connection_matcher_budget_setter_validates():
    matcher = ConnectionMatcher(np.array([1, 1]))
    with pytest.raises(ValueError, match="budget"):
        matcher.set_augmentation_budget(-3)
    matcher.set_augmentation_budget(5)
    assert matcher.augmentation_budget == 5
    matcher.set_augmentation_budget(None)
    assert matcher.augmentation_budget is None


def test_degraded_solver_metrics_match_fault_free_bitwise():
    spec = get_scenario("chaos_degraded_solver")
    session = build_scenario(spec, seed=spec.default_seed).session()
    degraded_run = session.run_to_horizon()
    fault_free = build_scenario(
        dataclasses.replace(spec, faults=()), seed=spec.default_seed
    ).run()
    assert sum(r.degraded for r in session.reports) > 0
    assert _round_records(degraded_run) == _round_records(fault_free)
    assert _summary(degraded_run) == _summary(fault_free)
    assert session.engine.degraded_rounds == sum(r.degraded for r in session.reports)


def test_round_report_degraded_flag_roundtrip_and_lean_serialization():
    from repro.api.session import RoundReport

    spec = get_scenario("chaos_degraded_solver")
    session = build_scenario(spec, seed=0).session()
    reports = session.step_until(rounds=8)
    degraded = [r for r in reports if r.degraded]
    clean = [r for r in reports if not r.degraded]
    assert degraded and clean
    # Fault-free rounds serialize without the key (golden/digest compat);
    # degraded rounds carry it and round-trip.
    assert "degraded" not in clean[0].to_dict()
    assert degraded[0].to_dict()["degraded"] == 1
    assert RoundReport.from_dict(degraded[0].to_dict()) == degraded[0]
    assert RoundReport.from_dict(clean[0].to_dict()) == clean[0]


def test_admission_shedding_when_degraded():
    spec = get_scenario("chaos_degraded_solver")
    compiled = build_scenario(spec, seed=0)
    session = VodSession(
        compiled.simulator,
        workload=compiled.workload,
        horizon=spec.horizon,
        fault_driver=compiled.fault_driver,
        shed_when_degraded=True,
    )
    session.step_until(rounds=12)  # rounds 10+ are all degraded at seed 0
    assert session.engine.last_round_degraded
    with pytest.raises(AdmissionError, match="shed"):
        session.submit_demands([(0, 0)])


def test_engine_without_budget_hook_raises():
    class NoBudget:
        pass

    engine = build_scenario(get_scenario("steady_state"), seed=0).simulator
    engine._matcher = NoBudget()
    with pytest.raises(RuntimeError, match="budget"):
        engine.set_solver_budget(1)


def test_fault_recovery_runner_row_shape_and_guarantees():
    # The cell behind the committed fault_recovery table: every pinned
    # column must be present and the recovery booleans must hold.
    from repro.faults.campaign import FAULT_RECOVERY_CAMPAIGN, run_fault_recovery

    (row,) = run_fault_recovery({"scenario": "chaos_box_crash", "seed": 0})
    assert row["scenario"] == "chaos_box_crash"
    assert row["recovered_matches"] is True
    assert row["truncated_detected"] is True
    assert row["matches_fault_free"] is False  # crashes genuinely change the run
    assert len(row["digest"]) > 0
    assert FAULT_RECOVERY_CAMPAIGN.runner == "fault_recovery"
    assert set(FAULT_RECOVERY_CAMPAIGN.grid["scenario"]) == set(CHAOS_NAMES)


def test_driver_applies_budget_events():
    engine = build_scenario(get_scenario("steady_state"), seed=0).simulator
    driver = FaultDriver(
        [FaultEvent(0, "set_budget", value=3.0), FaultEvent(1, "clear_budget")]
    )
    assert driver.apply(engine, 0) == 1
    assert engine._matcher.augmentation_budget == 3
    assert driver.apply(engine, 1) == 1
    assert engine._matcher.augmentation_budget is None
    assert driver.apply(engine, 2) == 0  # nothing scheduled
