"""The sharded multi-process engine (:mod:`repro.shard`).

The load-bearing property is *digest parity*: a sharded run — any shard
count, either host — must reproduce the single-process engine's scenario
digest bit for bit, because the coordinator keeps every digest-critical
sequential decision (workload draws, preload stripe rotation, the global
matcher) and the shards own only the box-partitioned data plane.  The
tests here pin that parity across scenarios (including a chaos one),
degenerate shapes (one shard, an empty shard), crash recovery via the
supervising host, and the v2 per-shard snapshot/restore path.
"""

from __future__ import annotations

import os
import pickle
import signal
import time as time_module

import numpy as np
import pytest

from repro.api import VodSession, VodSystem
from repro.api.session import RoundReport
from repro.scenarios.build import build_scenario
from repro.scenarios.registry import get_scenario
from repro.scenarios.replay import digest_result, run_scenario
from repro.shard import (
    ShardedVodSimulator,
    ShardHostError,
    ShardPlan,
    ShardTopologyError,
)

SEED = 4242

#: Scenarios the parity sweep covers: the calibrated baseline, a churn
#: regime, and one chaos_* fault scenario (driver-injected box crashes).
PARITY_SCENARIOS = ["steady_state", "churn_storm", "chaos_box_crash"]


def _single_process_run(name: str, rounds=None):
    return run_scenario(name, seed=SEED, num_rounds=rounds)


def _sharded_run(name: str, n_shards: int, host: str, rounds=None):
    return run_scenario(
        name, seed=SEED, num_rounds=rounds, n_shards=n_shards, shard_host=host
    )


# ---------------------------------------------------------------------- #
# Digest parity
# ---------------------------------------------------------------------- #
class TestDigestParity:
    @pytest.mark.parametrize("name", PARITY_SCENARIOS)
    def test_sharded_inline_matches_single_process(self, name):
        single = _single_process_run(name)
        sharded = _sharded_run(name, n_shards=3, host="inline")
        assert sharded.digest == single.digest
        assert sharded.round_records == single.round_records
        assert sharded.summary == single.summary

    def test_process_host_matches_single_process(self):
        single = _single_process_run("steady_state")
        sharded = _sharded_run("steady_state", n_shards=2, host="process")
        assert sharded.digest == single.digest

    def test_one_shard_degenerates_to_single_process(self):
        """n_shards=1 is the identity partition: byte-for-byte identical."""
        single = _single_process_run("near_threshold_load")
        sharded = _sharded_run("near_threshold_load", n_shards=1, host="inline")
        assert sharded.digest == single.digest
        assert sharded.round_records == single.round_records

    def test_shard_count_does_not_change_the_digest(self):
        runs = [
            _sharded_run("steady_state", n_shards=k, host="inline")
            for k in (2, 4)
        ]
        assert runs[0].digest == runs[1].digest


# ---------------------------------------------------------------------- #
# Degenerate partitions: empty shards, single-shard swarms
# ---------------------------------------------------------------------- #
def _paired_sessions(n_shards=None):
    """Two identically seeded facades; one sharded inline, one not."""
    sessions = []
    for shards in (None, n_shards):
        system = VodSystem.configure(
            catalog={"num_videos": 16, "num_stripes": 4, "duration": 12},
            population=("homogeneous", {"n": 32, "u": 2.0, "d": 3.0}),
            mu=1.5,
        )
        system.allocate("permutation", replicas_per_stripe=4, seed=7)
        kwargs = {} if shards is None else {
            "n_shards": shards, "shard_host": "inline"
        }
        sessions.append(system.open_session(horizon=10, **kwargs))
    return sessions


class TestDegenerateShapes:
    def test_empty_shard_stays_in_lockstep(self):
        """A shard that never sees a demand still tracks every round.

        All demand goes to shard 0's boxes (0..15), so shard 1's workers
        stay empty for the whole run — the coordinator must still call
        them every round (expiry lockstep) and the digest must match the
        single-process engine fed the same demands.
        """
        plain, sharded = _paired_sessions(n_shards=2)
        engine = sharded.engine
        assert isinstance(engine, ShardedVodSimulator)
        lo, hi = engine.shard_plan.range_of(1)
        for session in (plain, sharded):
            for round_index in range(10):
                if round_index % 3 == 0:
                    box = (round_index * 2) % 8
                    session.submit_demands([(box, (round_index * 5) % 16)])
                session.step()
        info = engine.shard_info()
        assert info[1]["demands"] == 0
        assert (lo, hi) == (16, 32)
        assert sharded.digest() == plain.digest()
        for session in (plain, sharded):
            session.close()

    def test_single_shard_swarm_skips_reconciliation(self):
        """Swarms confined to one shard never trigger reconciliation."""
        plain, sharded = _paired_sessions(n_shards=2)
        engine = sharded.engine
        for session in (plain, sharded):
            for round_index in range(10):
                if round_index % 3 == 0:
                    session.submit_demands([((round_index * 2) % 8, 3)])
                session.step()
        assert engine.reconciled_rounds == 0
        assert engine.last_round_boundary_videos == 0
        assert sharded.digest() == plain.digest()
        for session in (plain, sharded):
            session.close()

    def test_spanning_swarms_are_counted_as_reconciled(self):
        """The calibrated scenarios do span shards — the stats see it."""
        spec = get_scenario("steady_state")
        compiled = build_scenario(
            spec, seed=SEED, n_shards=3, shard_host="inline"
        )
        compiled.run(spec.horizon)
        sim = compiled.simulator
        try:
            assert sim.reconciled_rounds > 0
            assert sim.cross_shard_connections > 0
        finally:
            sim.close()


# ---------------------------------------------------------------------- #
# Construction constraints
# ---------------------------------------------------------------------- #
class TestConstruction:
    def _system(self):
        system = VodSystem.configure(
            catalog={"num_videos": 16, "num_stripes": 4, "duration": 12},
            population=("homogeneous", {"n": 32, "u": 2.0, "d": 3.0}),
            mu=1.5,
        )
        system.allocate("permutation", replicas_per_stripe=4, seed=7)
        return system

    def test_rejects_bad_shard_host(self):
        with pytest.raises(ValueError, match="shard_host"):
            self._system().build_simulator(n_shards=2, shard_host="thread")

    def test_rejects_non_preloading_scheduler(self):
        with pytest.raises(ValueError, match="PreloadingScheduler"):
            self._system().build_simulator(
                n_shards=2, shard_host="inline", scheduler="immediate"
            )

    def test_rejects_compensation_plan(self):
        with pytest.raises(ValueError, match="compensation"):
            self._system().build_simulator(
                n_shards=2, shard_host="inline", compensation_plan=object()
            )

    def test_live_reconfiguration_is_refused(self):
        sim = self._system().build_simulator(n_shards=2, shard_host="inline")
        try:
            with pytest.raises(NotImplementedError):
                sim.join_boxes([2.0], [3.0])
            with pytest.raises(NotImplementedError):
                sim.add_videos(1)
        finally:
            sim.close()


# ---------------------------------------------------------------------- #
# ShardPlan
# ---------------------------------------------------------------------- #
class TestShardPlan:
    def test_contiguous_cover(self):
        plan = ShardPlan(100, 3)
        ranges = [plan.range_of(s) for s in range(3)]
        assert ranges[0][0] == 0 and ranges[-1][1] == 100
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo

    def test_shard_of_matches_ranges(self):
        plan = ShardPlan(97, 4)
        boxes = np.arange(97)
        shards = plan.shard_of(boxes)
        for s in range(4):
            lo, hi = plan.range_of(s)
            assert (shards[lo:hi] == s).all()
            assert plan.shard_of_box(lo) == s

    def test_partition_preserves_arrival_order(self):
        plan = ShardPlan(40, 4)
        boxes = np.array([39, 1, 12, 0, 35, 11], dtype=np.int64)
        parts = plan.partition_indices(boxes)
        recovered = np.concatenate([p for p in parts if p.size])
        assert sorted(recovered.tolist()) == list(range(boxes.size))
        for idx in parts:  # positions stay ascending = arrival order
            assert (np.diff(idx) > 0).all() if idx.size > 1 else True

    def test_tokens_are_seed_deterministic(self):
        a = ShardPlan(50, 3, np.random.SeedSequence(9))
        b = ShardPlan(50, 3, np.random.SeedSequence(9))
        c = ShardPlan(50, 3, np.random.SeedSequence(10))
        assert a.tokens == b.tokens
        assert a.tokens != c.tokens


# ---------------------------------------------------------------------- #
# Snapshot / restore (v2 per-shard checkpoints)
# ---------------------------------------------------------------------- #
class TestSnapshotRestore:
    @pytest.mark.parametrize("host", ["inline", "process"])
    def test_mid_run_restore_is_bit_identical(self, host):
        spec = get_scenario("steady_state")
        rounds = spec.horizon
        compiled = build_scenario(
            spec, seed=SEED, min_horizon=rounds, n_shards=2, shard_host=host
        )
        session = compiled.session(horizon=rounds)
        session.step_until(round=rounds // 2)
        snapshot = session.snapshot()
        session.step_until(round=rounds)
        reference = session.digest()

        restored = VodSession.restore(snapshot)
        restored.step_until(round=rounds)
        assert restored.digest() == reference
        assert isinstance(restored.engine, ShardedVodSimulator)
        assert restored.engine.shard_host_kind == host
        for handle in (session, restored):
            handle.close()

    def test_restore_validates_worker_identity(self):
        """Worker states in the wrong shard slots are a hard error."""
        spec = get_scenario("steady_state")
        compiled = build_scenario(
            spec, seed=SEED, n_shards=2, shard_host="inline"
        )
        sim = compiled.simulator
        compiled.run(4)
        clone = pickle.loads(pickle.dumps(sim))
        sim.close()
        clone._worker_states = list(reversed(clone._worker_states))
        with pytest.raises(ShardHostError, match="shard plan"):
            clone.shard_info()

    def test_restore_rejects_mismatched_shard_count(self):
        """Fewer worker states than the plan is a typed error, not IndexError."""
        spec = get_scenario("steady_state")
        compiled = build_scenario(
            spec, seed=SEED, n_shards=3, shard_host="inline"
        )
        sim = compiled.simulator
        compiled.run(4)
        clone = pickle.loads(pickle.dumps(sim))
        sim.close()
        clone._worker_states = clone._worker_states[:-1]
        with pytest.raises(ShardTopologyError, match="n_shards"):
            clone.shard_info()

    def test_restore_rejects_extra_worker_states(self):
        spec = get_scenario("steady_state")
        compiled = build_scenario(
            spec, seed=SEED, n_shards=2, shard_host="inline"
        )
        sim = compiled.simulator
        compiled.run(4)
        clone = pickle.loads(pickle.dumps(sim))
        sim.close()
        clone._worker_states = clone._worker_states + [clone._worker_states[0]]
        with pytest.raises(ShardTopologyError, match="expects 2"):
            clone.shard_info()

    def test_restore_rejects_states_from_a_different_plan(self):
        """Worker states recorded under another seed's plan fail identity."""
        spec = get_scenario("steady_state")
        compiled = build_scenario(
            spec, seed=SEED, n_shards=2, shard_host="inline"
        )
        other = build_scenario(
            spec, seed=SEED + 1, n_shards=2, shard_host="inline"
        )
        compiled.run(4)
        other.run(4)
        clone = pickle.loads(pickle.dumps(compiled.simulator))
        foreign = pickle.loads(pickle.dumps(other.simulator))
        compiled.simulator.close()
        other.simulator.close()
        clone._worker_states = foreign._worker_states
        with pytest.raises(ShardHostError, match="different run"):
            clone.shard_info()


# ---------------------------------------------------------------------- #
# Crash recovery through the supervising host
# ---------------------------------------------------------------------- #
class TestCrashRecovery:
    def test_sigkill_one_worker_preserves_the_digest(self):
        spec = get_scenario("steady_state")
        rounds = spec.horizon
        reference = _single_process_run("steady_state")

        compiled = build_scenario(
            spec, seed=SEED, min_horizon=rounds, n_shards=2, shard_host="process"
        )
        session = compiled.session(horizon=rounds)
        sim = compiled.simulator
        session.step_until(round=rounds // 2)
        victim = sim.shard_pids()[1]
        os.kill(victim, signal.SIGKILL)
        time_module.sleep(0.1)
        session.step_until(round=rounds)
        run = digest_result(spec, SEED, rounds, session.result())
        try:
            assert run.digest == reference.digest
            assert sim.shard_restarts >= 1
            assert sim.shard_pids()[1] != victim
            # The restart surfaced in exactly the reports of the rounds
            # that performed a recovery, nowhere else.
            restarts = sum(r.shard_restarts for r in session.reports)
            assert restarts == sim.shard_restarts
        finally:
            session.close()

    def test_host_replays_the_log_since_the_last_checkpoint(self):
        """Kill between checkpoints: the replayed worker has caught up."""
        spec = get_scenario("steady_state")
        compiled = build_scenario(
            spec, seed=SEED, n_shards=2, shard_host="process"
        )
        sim = compiled.simulator
        session = compiled.session(horizon=12)
        session.step_until(round=11)  # checkpoint_every=8: log is non-empty
        before = sim.shard_info()
        os.kill(sim.shard_pids()[0], signal.SIGKILL)
        after = sim.shard_info()  # forces recovery on this very call
        session.step()  # the counters sync at the end of the next round
        try:
            assert after == before
            assert sim.shard_restarts == 1
        finally:
            session.close()


# ---------------------------------------------------------------------- #
# RoundReport plumbing
# ---------------------------------------------------------------------- #
class TestRoundReportField:
    def _report(self, **overrides):
        base = dict(
            time=3,
            active_requests=5,
            new_requests=2,
            matched=5,
            unmatched=0,
            feasible=True,
            upload_used=5,
            upload_capacity=9,
            demands_injected=1,
            demands_rejected=0,
            playback_starts=1,
            offline_boxes=0,
        )
        base.update(overrides)
        return RoundReport(**base)

    def test_serialized_only_when_set(self):
        assert "shard_restarts" not in self._report().to_dict()
        payload = self._report(shard_restarts=2).to_dict()
        assert payload["shard_restarts"] == 2

    def test_roundtrip(self):
        report = self._report(shard_restarts=1)
        assert RoundReport.from_dict(report.to_dict()) == report
        plain = self._report()
        assert RoundReport.from_dict(plain.to_dict()) == plain


# ---------------------------------------------------------------------- #
# Host details
# ---------------------------------------------------------------------- #
class TestHosts:
    def test_inline_and_process_hosts_agree(self):
        single = _sharded_run("churn_storm", n_shards=2, host="inline")
        process = _sharded_run("churn_storm", n_shards=2, host="process")
        assert process.digest == single.digest

    def test_process_host_exposes_distinct_pids(self):
        spec = get_scenario("steady_state")
        compiled = build_scenario(
            spec, seed=SEED, n_shards=3, shard_host="process"
        )
        sim = compiled.simulator
        try:
            pids = sim.shard_pids()
            assert len(set(pids)) == 3
            assert os.getpid() not in pids
            for probe in sim.shard_rss():
                assert probe["rss_kib"] > 0
        finally:
            sim.close()

    def test_inline_host_runs_in_this_process(self):
        spec = get_scenario("steady_state")
        compiled = build_scenario(
            spec, seed=SEED, n_shards=2, shard_host="inline"
        )
        sim = compiled.simulator
        try:
            assert sim.shard_pids() == [os.getpid()] * 2
        finally:
            sim.close()

    def test_host_error_on_closed_host_without_states(self):
        spec = get_scenario("steady_state")
        compiled = build_scenario(
            spec, seed=SEED, n_shards=2, shard_host="inline"
        )
        sim = compiled.simulator
        sim.close()
        with pytest.raises(ShardHostError, match="closed"):
            sim.shard_info()
