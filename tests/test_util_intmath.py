"""Tests for repro.util.intmath."""

import pytest
from hypothesis import given, strategies as st

from repro.util.intmath import (
    ceil_div,
    effective_upload,
    floor_multiple,
    floor_to_stripe_units,
    is_close_multiple,
    lcm_of,
    scale_to_integer_capacities,
)


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(6, 3) == 2

    def test_rounding_up(self):
        assert ceil_div(7, 3) == 3

    def test_zero_numerator(self):
        assert ceil_div(0, 5) == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            ceil_div(5, 0)
        with pytest.raises(ValueError):
            ceil_div(-1, 2)

    @given(st.integers(0, 10_000), st.integers(1, 500))
    def test_matches_math_ceil(self, a, b):
        import math

        assert ceil_div(a, b) == math.ceil(a / b)


class TestFloorMultiple:
    def test_basic(self):
        assert floor_multiple(0.7, 0.25) == pytest.approx(0.5)

    def test_exact_multiple_preserved(self):
        assert floor_multiple(0.75, 0.25) == pytest.approx(0.75)

    def test_invalid(self):
        with pytest.raises(ValueError):
            floor_multiple(1.0, 0.0)
        with pytest.raises(ValueError):
            floor_multiple(-1.0, 0.5)


class TestStripeUnits:
    def test_floor_to_stripe_units(self):
        assert floor_to_stripe_units(1.0, 4) == 4
        assert floor_to_stripe_units(1.3, 4) == 5
        assert floor_to_stripe_units(0.0, 4) == 0

    def test_float_representation_of_exact_multiple(self):
        # 0.3 * 10 = 2.9999999999999996 in floats; the epsilon must fix it.
        assert floor_to_stripe_units(0.3, 10) == 3

    def test_effective_upload(self):
        assert effective_upload(1.3, 4) == pytest.approx(5 / 4)
        assert effective_upload(2.0, 5) == pytest.approx(2.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            floor_to_stripe_units(1.0, 0)
        with pytest.raises(ValueError):
            floor_to_stripe_units(-0.5, 4)

    @given(st.floats(0, 50, allow_nan=False), st.integers(1, 64))
    def test_effective_upload_never_exceeds_upload(self, u, c):
        assert effective_upload(u, c) <= u + 1e-9

    @given(st.floats(0, 50, allow_nan=False), st.integers(1, 64))
    def test_effective_upload_within_one_stripe(self, u, c):
        assert u - effective_upload(u, c) < 1.0 / c + 1e-9


class TestLcm:
    def test_basic(self):
        assert lcm_of([2, 3, 4]) == 12

    def test_single(self):
        assert lcm_of([7]) == 7

    def test_invalid(self):
        with pytest.raises(ValueError):
            lcm_of([])
        with pytest.raises(ValueError):
            lcm_of([2, 0])


class TestScaleToIntegerCapacities:
    def test_half_and_quarters(self):
        scaled, scale = scale_to_integer_capacities([0.5, 1.25, 2.0])
        assert scale == 4
        assert scaled == [2, 5, 8]

    def test_integers_stay_integers(self):
        scaled, scale = scale_to_integer_capacities([1.0, 3.0])
        assert scale == 1
        assert scaled == [1, 3]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            scale_to_integer_capacities([-0.5])

    @given(st.lists(st.fractions(min_value=0, max_value=20, max_denominator=16), min_size=1, max_size=8))
    def test_scaling_is_exact_for_small_denominators(self, fractions):
        rates = [float(f) for f in fractions]
        scaled, scale = scale_to_integer_capacities(rates)
        for rate, value in zip(fractions, scaled):
            assert rate * scale == value


class TestIsCloseMultiple:
    def test_true_cases(self):
        assert is_close_multiple(0.75, 0.25)
        assert is_close_multiple(3.0, 1.0)

    def test_false_case(self):
        assert not is_close_multiple(0.7, 0.25)

    def test_invalid_unit(self):
        with pytest.raises(ValueError):
            is_close_multiple(1.0, 0.0)
