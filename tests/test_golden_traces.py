"""Golden-trace regression tests.

Three representative scenarios are recorded under ``tests/golden/``; each
test replays the scenario from the registry at the recorded seed and
requires a bit-identical digest.  After an *intentional* behaviour change
(new solver default, workload fix, ...) regenerate the recordings with

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py --regen-golden
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.scenarios.replay import (
    diff_golden,
    load_golden,
    run_scenario,
    verify_golden_file,
    write_golden,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

#: (scenario name, recorded seed) — keep in sync with the files on disk.
#: scale_tier_10k pins the vectorized struct-of-arrays hot path at a
#: 10k-box instance size (seeded, spec-horizon recording).
#: The chaos_* entries pin the fault-injection layer: their specs embed
#: FaultSpecs, so replaying them exercises the compiled fault plans.
GOLDEN_SCENARIOS = [
    ("steady_state", 1234),
    ("flashcrowd_spike", 1234),
    ("churn_storm", 1234),
    ("scale_tier_10k", 1234),
    ("scale_tier_100k", 1234),
    ("chaos_box_crash", 1234),
    ("chaos_brownout", 1234),
    ("chaos_degraded_solver", 1234),
    # event_steady_state pins the event-driven engine: its summary carries
    # the latency-percentile keys, so the digest covers the continuous
    # clock's arrival-offset stream as well as the round-binned records.
    ("event_steady_state", 1234),
]

#: CI budget: heavyweight tiers record fewer rounds than their spec
#: horizon (the golden file stores the recorded count; replays honour it).
_GOLDEN_ROUNDS = {"scale_tier_100k": 25}


def _golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


@pytest.mark.parametrize("name,seed", GOLDEN_SCENARIOS)
def test_golden_trace_replays_bit_identically(name, seed, regen_golden):
    path = _golden_path(name)
    if regen_golden:
        run = run_scenario(name, seed=seed, num_rounds=_GOLDEN_ROUNDS.get(name))
        write_golden(run, path)
        pytest.skip(f"regenerated {path}")
    assert path.exists(), (
        f"missing golden trace {path}; record it with --regen-golden"
    )
    run, diffs = verify_golden_file(path)
    assert not diffs, "golden trace diverged:\n" + "\n".join(f"  {d}" for d in diffs)
    assert run.digest == load_golden(path)["digest"]


@pytest.mark.parametrize("name,seed", GOLDEN_SCENARIOS)
def test_golden_trace_replays_through_session_facade(name, seed, regen_golden):
    """Stepping a VodSession reproduces the recorded batch rounds bit for bit."""
    if regen_golden:
        pytest.skip("regeneration run")
    from repro.scenarios.build import build_scenario
    from repro.scenarios.spec import ScenarioSpec

    golden = load_golden(_golden_path(name))
    spec = ScenarioSpec.from_dict(golden["spec"])
    rounds = int(golden["rounds"])
    session = build_scenario(spec, seed=seed, min_horizon=rounds).session(
        horizon=rounds
    )
    reports = session.step_until(round=rounds)
    # The reports must mirror the engine's stats, and those stats must
    # digest to exactly the recorded golden rounds.
    result = session.result()
    assert [r.to_round_stats() for r in reports] == list(result.metrics.round_stats)
    from repro.scenarios.replay import _round_records

    assert _round_records(result) == [dict(r) for r in golden["round_records"]]


@pytest.mark.parametrize("name,seed", GOLDEN_SCENARIOS)
def test_golden_file_embeds_registry_spec(name, seed, regen_golden):
    if regen_golden:
        pytest.skip("regeneration run")
    golden = load_golden(_golden_path(name))
    assert golden["scenario"] == name
    assert golden["seed"] == seed
    assert golden["spec"]["name"] == name


def test_diff_golden_detects_tampered_rounds(regen_golden):
    if regen_golden:
        pytest.skip("regeneration run")
    name, seed = GOLDEN_SCENARIOS[0]
    golden = load_golden(_golden_path(name))
    golden["round_records"][2]["matched"] += 1
    run = run_scenario(name, seed=seed, num_rounds=golden["rounds"])
    diffs = diff_golden(run, golden)
    assert any("round 2" in d for d in diffs)


def test_diff_golden_detects_tampered_digest(tmp_path, regen_golden):
    if regen_golden:
        pytest.skip("regeneration run")
    name, seed = GOLDEN_SCENARIOS[0]
    golden = load_golden(_golden_path(name))
    golden["digest"] = "0" * 64
    tampered = tmp_path / "tampered.json"
    tampered.write_text(json.dumps(golden))
    _, diffs = verify_golden_file(tampered)
    assert any(d.startswith("digest:") for d in diffs)


def test_load_golden_rejects_unknown_format(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"format": 99}))
    with pytest.raises(ValueError, match="format"):
        load_golden(bad)
