"""Golden-trace regression tests.

Three representative scenarios are recorded under ``tests/golden/``; each
test replays the scenario from the registry at the recorded seed and
requires a bit-identical digest.  After an *intentional* behaviour change
(new solver default, workload fix, ...) regenerate the recordings with

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py --regen-golden
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.scenarios.replay import (
    diff_golden,
    load_golden,
    run_scenario,
    verify_golden_file,
    write_golden,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

#: (scenario name, recorded seed) — keep in sync with the files on disk.
#: scale_tier_10k pins the vectorized struct-of-arrays hot path at a
#: 10k-box instance size (seeded, spec-horizon recording).
#: The chaos_* entries pin the fault-injection layer: their specs embed
#: FaultSpecs, so replaying them exercises the compiled fault plans.
GOLDEN_SCENARIOS = [
    ("steady_state", 1234),
    ("flashcrowd_spike", 1234),
    ("churn_storm", 1234),
    ("scale_tier_10k", 1234),
    ("scale_tier_100k", 1234),
    ("chaos_box_crash", 1234),
    ("chaos_brownout", 1234),
    ("chaos_degraded_solver", 1234),
    # event_steady_state pins the event-driven engine: its summary carries
    # the latency-percentile keys, so the digest covers the continuous
    # clock's arrival-offset stream as well as the round-binned records.
    ("event_steady_state", 1234),
    # The workload-realism tier: Zipf/drift/trace demand and the
    # hierarchical CDN baseline (population + allocation components).
    ("zipf_steady", 1234),
    ("zipf_drift", 1234),
    ("trace_replay", 1234),
    ("cdn_hybrid_baseline", 1234),
]

#: Digests of the goldens that predate the workload-realism tier, frozen
#: at their committed values.  The new workload kinds draw from the
#: existing per-phase child streams of the master seed, so adding them
#: must leave every one of these recordings byte-identical; a mismatch
#: here means the stream discipline (or a recording) changed by accident
#: rather than through a deliberate --regen-golden.
PRE_WORKLOAD_TIER_DIGESTS = {
    "chaos_box_crash": "cd16266ec0a257c123faed2f0ac1f3d3d084c7dcd0354034e39ad85f68711ce3",
    "chaos_brownout": "74dca888b31f2850e0ee19ee3a2c8380624f18f7c02251deebf4d1808a7b2643",
    "chaos_degraded_solver": "377ade9de49170fa0c83a0375ab7d193a3907ef2f3f5c9ce4c4952efddaa97a8",
    "churn_storm": "2cc505a467cbdec10c457feb589a8c4c058bb8d4e189c5b9705e5333ece4de5a",
    "event_steady_state": "b93efdfe737e1909dc4f27a84cc4daaec9a32dae7561d67ec38cf81730d75b3b",
    "flashcrowd_spike": "519f5ea4c09fe6e7e34041013a90652a784b4aebca05000daf40ecc90f194451",
    "scale_tier_100k": "d0c45edbbcca27aa6127dde148e6141db09cb75551845380c4900ef62a5a01ba",
    "scale_tier_10k": "0a39300db870e7a5e66d71ba93933585ff882ffec1e79990586200ae99fd1535",
    "steady_state": "d158f7f07f976f5d6ae94513e6e42f50fd92e35fcb9a848b664dc1930658b765",
}

#: CI budget: heavyweight tiers record fewer rounds than their spec
#: horizon (the golden file stores the recorded count; replays honour it).
_GOLDEN_ROUNDS = {"scale_tier_100k": 25}


def _golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


@pytest.mark.parametrize("name,seed", GOLDEN_SCENARIOS)
def test_golden_trace_replays_bit_identically(name, seed, regen_golden):
    path = _golden_path(name)
    if regen_golden:
        run = run_scenario(name, seed=seed, num_rounds=_GOLDEN_ROUNDS.get(name))
        write_golden(run, path)
        pytest.skip(f"regenerated {path}")
    assert path.exists(), (
        f"missing golden trace {path}; record it with --regen-golden"
    )
    run, diffs = verify_golden_file(path)
    assert not diffs, "golden trace diverged:\n" + "\n".join(f"  {d}" for d in diffs)
    assert run.digest == load_golden(path)["digest"]


@pytest.mark.parametrize("name,seed", GOLDEN_SCENARIOS)
def test_golden_trace_replays_through_session_facade(name, seed, regen_golden):
    """Stepping a VodSession reproduces the recorded batch rounds bit for bit."""
    if regen_golden:
        pytest.skip("regeneration run")
    from repro.scenarios.build import build_scenario
    from repro.scenarios.spec import ScenarioSpec

    golden = load_golden(_golden_path(name))
    spec = ScenarioSpec.from_dict(golden["spec"])
    rounds = int(golden["rounds"])
    session = build_scenario(spec, seed=seed, min_horizon=rounds).session(
        horizon=rounds
    )
    reports = session.step_until(round=rounds)
    # The reports must mirror the engine's stats, and those stats must
    # digest to exactly the recorded golden rounds.
    result = session.result()
    assert [r.to_round_stats() for r in reports] == list(result.metrics.round_stats)
    from repro.scenarios.replay import _round_records

    assert _round_records(result) == [dict(r) for r in golden["round_records"]]


@pytest.mark.parametrize("name,seed", GOLDEN_SCENARIOS)
def test_golden_file_embeds_registry_spec(name, seed, regen_golden):
    if regen_golden:
        pytest.skip("regeneration run")
    golden = load_golden(_golden_path(name))
    assert golden["scenario"] == name
    assert golden["seed"] == seed
    assert golden["spec"]["name"] == name


def test_pre_workload_tier_goldens_pinned_byte_identical():
    """The 9 goldens recorded before the workload tier are untouched.

    One sweep over the frozen digest table: both the committed file and
    the names list must match exactly — catching silent regeneration as
    well as accidental stream-order drift from the new workload kinds.
    """
    assert sorted(PRE_WORKLOAD_TIER_DIGESTS) == sorted(
        p.stem
        for p in GOLDEN_DIR.glob("*.json")
        if p.stem in PRE_WORKLOAD_TIER_DIGESTS
    )
    for name, digest in sorted(PRE_WORKLOAD_TIER_DIGESTS.items()):
        golden = load_golden(_golden_path(name))
        assert golden["digest"] == digest, (
            f"golden {name} was re-recorded: digest {golden['digest']} != "
            f"frozen {digest}; the workload-realism tier must not disturb "
            "pre-existing recordings"
        )


def test_diff_golden_detects_tampered_rounds(regen_golden):
    if regen_golden:
        pytest.skip("regeneration run")
    name, seed = GOLDEN_SCENARIOS[0]
    golden = load_golden(_golden_path(name))
    golden["round_records"][2]["matched"] += 1
    run = run_scenario(name, seed=seed, num_rounds=golden["rounds"])
    diffs = diff_golden(run, golden)
    assert any("round 2" in d for d in diffs)


def test_diff_golden_detects_tampered_digest(tmp_path, regen_golden):
    if regen_golden:
        pytest.skip("regeneration run")
    name, seed = GOLDEN_SCENARIOS[0]
    golden = load_golden(_golden_path(name))
    golden["digest"] = "0" * 64
    tampered = tmp_path / "tampered.json"
    tampered.write_text(json.dumps(golden))
    _, diffs = verify_golden_file(tampered)
    assert any(d.startswith("digest:") for d in diffs)


def test_load_golden_rejects_unknown_format(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"format": 99}))
    with pytest.raises(ValueError, match="format"):
        load_golden(bad)
