"""Property-based hardening of the scenario layer and matcher invariants.

Hypothesis generates adversarial bipartite instances, cache histories and
scenario seeds; the properties pin down exactly the invariants the
scenario subsystem's replay and oracle layers rely on:

* every matching respects upload capacities and possession edges;
* warm-started solves always reach the cold maximum cardinality, whatever
  (even adversarially stale) initial assignment they are seeded with;
* the batched CSR adjacency agrees with the set-based possession queries;
* replaying a scenario with the same seed reproduces the digest exactly.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.allocation import random_permutation_allocation
from repro.core.matching import ConnectionMatcher, PossessionIndex, RequestSet, StripeRequest
from repro.core.parameters import homogeneous_population
from repro.core.video import Catalog
from repro.flow.dinic import dinic_max_flow
from repro.flow.hopcroft_karp import csr_from_edges, hopcroft_karp_matching
from repro.flow.network import build_bipartite_network
from repro.scenarios.replay import run_scenario

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def bipartite_instances(draw):
    """A random unit-demand b-matching instance as (L, R, edges, caps)."""
    num_left = draw(st.integers(min_value=0, max_value=18))
    num_right = draw(st.integers(min_value=1, max_value=8))
    caps = draw(
        st.lists(
            st.integers(min_value=0, max_value=3),
            min_size=num_right,
            max_size=num_right,
        )
    )
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=max(num_left - 1, 0)),
                st.integers(min_value=0, max_value=num_right - 1),
            ),
            max_size=60,
        )
    )
    edges = [(l, r) for l, r in edges if l < num_left]
    return num_left, num_right, edges, caps


class TestMatcherInvariants:
    @_SETTINGS
    @given(bipartite_instances())
    def test_matching_respects_capacities_and_edges(self, instance):
        num_left, num_right, edges, caps = instance
        indptr, indices = csr_from_edges(num_left, num_right, edges)
        result = hopcroft_karp_matching(num_left, num_right, indptr, indices, caps)
        load = [0] * num_right
        adjacency = [set() for _ in range(num_left)]
        for left, right in edges:
            adjacency[left].add(right)
        for i, box in enumerate(result.assignment):
            if box >= 0:
                assert int(box) in adjacency[i]
                load[int(box)] += 1
        for j in range(num_right):
            assert load[j] <= caps[j]
        assert result.matched == sum(1 for b in result.assignment if b >= 0)

    @_SETTINGS
    @given(bipartite_instances())
    def test_matching_is_maximum(self, instance):
        num_left, num_right, edges, caps = instance
        indptr, indices = csr_from_edges(num_left, num_right, edges)
        result = hopcroft_karp_matching(num_left, num_right, indptr, indices, caps)
        network, source, sink = build_bipartite_network(
            num_left, num_right, edges, [1] * num_left, caps
        )
        assert result.matched == dinic_max_flow(network, source, sink)

    @_SETTINGS
    @given(bipartite_instances(), st.randoms(use_true_random=False))
    def test_warm_start_never_changes_cardinality(self, instance, pyrandom):
        num_left, num_right, edges, caps = instance
        indptr, indices = csr_from_edges(num_left, num_right, edges)
        cold = hopcroft_karp_matching(num_left, num_right, indptr, indices, caps)
        # Adversarially stale warm start: arbitrary boxes, including
        # non-neighbours, over-capacity picks and out-of-range values.
        warm_seed = [
            pyrandom.randrange(-2, num_right + 2) for _ in range(num_left)
        ]
        warm = hopcroft_karp_matching(
            num_left, num_right, indptr, indices, caps, initial_assignment=warm_seed
        )
        assert warm.matched == cold.matched
        assert warm.feasible == cold.feasible


class TestPossessionInvariants:
    @_SETTINGS
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=11),  # stripe
                st.integers(min_value=0, max_value=11),  # box
                st.integers(min_value=0, max_value=9),   # time
            ),
            max_size=25,
        ),
    )
    def test_batched_adjacency_matches_set_queries(self, seed, downloads):
        catalog = Catalog(num_videos=4, num_stripes=3, duration=5)
        population = homogeneous_population(12, u=2.0, d=2.0)
        allocation = random_permutation_allocation(
            catalog, population, replicas_per_stripe=2, random_state=seed
        )
        possession = PossessionIndex(allocation, cache_window=5)
        for stripe, box, time in downloads:
            possession.record_download(stripe, box, time)
        current_time = 9
        possession.evict_before(current_time)
        requests = [
            StripeRequest(stripe_id=s, request_time=min(t + 1, current_time), box_id=b)
            for (s, b, t) in downloads
        ] or [StripeRequest(stripe_id=0, request_time=0, box_id=0)]
        indptr, indices = possession.adjacency_for(requests, current_time)
        for i, request in enumerate(requests):
            row = set(int(x) for x in indices[int(indptr[i]): int(indptr[i + 1])])
            expected = possession.servers_for(request, current_time)
            expected.discard(request.box_id)
            assert row == expected

    @_SETTINGS
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_engine_matchings_only_use_possessed_data(self, seed):
        catalog = Catalog(num_videos=4, num_stripes=3, duration=5)
        population = homogeneous_population(12, u=2.0, d=2.0)
        allocation = random_permutation_allocation(
            catalog, population, replicas_per_stripe=3, random_state=seed
        )
        possession = PossessionIndex(allocation, cache_window=5)
        matcher = ConnectionMatcher(population.upload_slots(3))
        rng = np.random.default_rng(seed)
        requests = RequestSet(
            StripeRequest(
                stripe_id=int(rng.integers(catalog.total_stripes)),
                request_time=0,
                box_id=int(rng.integers(12)),
            )
            for _ in range(8)
        )
        matching = matcher.match(requests, possession, current_time=0)
        slots = population.upload_slots(3)
        for i, box in enumerate(matching.assignment):
            if box >= 0:
                servers = possession.servers_for(requests[i], 0)
                assert int(box) in servers
                assert int(box) != requests[i].box_id
        assert np.all(matching.box_load <= slots)


class TestScenarioReplayProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_same_seed_same_digest(self, seed):
        first = run_scenario("flashcrowd_spike", seed=seed, num_rounds=5)
        second = run_scenario("flashcrowd_spike", seed=seed, num_rounds=5)
        assert first.digest == second.digest

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_warm_and_cold_runs_agree_in_feasible_regimes(self, seed):
        """Per-round matched counts of warm-started vs cold runs coincide.

        In fully feasible runs the two trajectories visit identical states
        (every request is served the round it appears), so all metric
        records — not just cardinality — must agree.
        """
        from repro.scenarios.registry import get_scenario

        spec = get_scenario("steady_state")
        warm = run_scenario(spec, seed=seed, num_rounds=6)
        cold = run_scenario(spec.with_overrides(warm_start=False), seed=seed, num_rounds=6)
        if warm.summary["infeasible_rounds"] == 0:
            assert warm.round_records == cold.round_records
        else:  # pragma: no cover - steady_state stays feasible in practice
            assert [r["matched"] for r in warm.round_records[:1]] == [
                r["matched"] for r in cold.round_records[:1]
            ]
