"""Component registry, protocol conformance and the deprecation shim."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro
from repro.api import (
    COMPONENT_KINDS,
    ChurnModel,
    ComponentLookupError,
    DemandGenerator,
    RequestScheduler,
    Solver,
    VodSystem,
    available_components,
    component_factory,
    create_component,
    register_component,
)
from repro.core.matching import ConnectionMatcher
from repro.core.preloading import ImmediateRequestScheduler, PreloadingScheduler
from repro.core.video import Catalog
from repro.sim.churn import ChurnSchedule, Outage
from repro.workloads.popularity import ZipfDemandWorkload


# ---------------------------------------------------------------------- #
# Registry lookups
# ---------------------------------------------------------------------- #
def test_builtin_components_are_registered():
    components = available_components()
    assert set(components) == set(COMPONENT_KINDS)
    assert set(components["solver"]) == {
        "dinic",
        "edmonds_karp",
        "hopcroft_karp",
        "push_relabel",
    }
    assert {"preloading", "immediate"} <= set(components["scheduler"])
    assert {"zipf", "uniform", "flashcrowd", "cold_start", "static"} <= set(
        components["workload"]
    )
    assert "random" in components["churn"]
    assert {"homogeneous", "two_class", "pareto"} <= set(components["population"])
    assert {"permutation", "independent", "round_robin", "full_replication"} <= set(
        components["allocation"]
    )


def test_available_components_single_kind():
    assert list(available_components("churn")) == ["churn"]


def test_unknown_kind_raises():
    with pytest.raises(ComponentLookupError):
        component_factory("frobnicator", "x")
    with pytest.raises(ComponentLookupError):
        available_components("frobnicator")


def test_unknown_name_raises_and_is_a_keyerror():
    with pytest.raises(ComponentLookupError):
        component_factory("solver", "simplex")
    with pytest.raises(KeyError):
        component_factory("solver", "simplex")


def test_register_refuses_silent_redefinition():
    with pytest.raises(ValueError):
        register_component("solver", "hopcroft_karp", lambda slots: None)


def test_register_and_overwrite_roundtrip():
    marker = object()
    register_component("workload", "test_only_marker", lambda *a: marker)
    try:
        assert create_component("workload", "test_only_marker") is marker
        replacement = object()
        register_component(
            "workload", "test_only_marker", lambda *a: replacement, overwrite=True
        )
        assert create_component("workload", "test_only_marker") is replacement
    finally:
        # Clean the registry for other tests in this process.
        from repro.api import registry as registry_module

        registry_module._REGISTRY["workload"].pop("test_only_marker", None)


def test_register_validates_inputs():
    with pytest.raises(ValueError):
        register_component("solver", "", lambda slots: None)
    with pytest.raises(TypeError):
        register_component("solver", "not_callable", 42)


def test_solver_factory_builds_the_named_kernel():
    matcher = create_component("solver", "dinic", [2, 2, 2])
    assert isinstance(matcher, ConnectionMatcher)
    assert matcher.solver == "dinic"


def test_custom_registered_solver_is_constructed_by_the_facade():
    """A registered solver name is actually usable, not just validated."""
    built = []

    def factory(upload_slots):
        matcher = ConnectionMatcher(upload_slots, solver="dinic")
        built.append(matcher)
        return matcher

    register_component("solver", "test_only_solver", factory)
    try:
        system = VodSystem.configure(
            catalog={"num_videos": 6, "num_stripes": 4, "duration": 8},
            population=("homogeneous", {"n": 12, "u": 2.0, "d": 3.0}),
        )
        system.allocate("permutation", replicas_per_stripe=3, seed=1)
        session = system.open_session(horizon=3, solver="test_only_solver")
        assert built and session.engine.matcher is built[0]
        session.submit(0, 0)
        assert session.step().matched == 1
    finally:
        from repro.api import registry as registry_module

        registry_module._REGISTRY["solver"].pop("test_only_solver", None)


def test_full_replication_allocation_through_facade():
    system = VodSystem.configure(
        catalog={"num_videos": 3, "num_stripes": 4, "duration": 10},
        population=("homogeneous", {"n": 12, "u": 2.0, "d": 3.0}),
    )
    allocation = system.allocate("full_replication", replicas_per_stripe=3)
    assert allocation.scheme == "full_replication"
    # Every box holds a stripe of every video.
    for box in range(12):
        stripes = allocation.stripes_on_box(box)
        videos = {int(s) // 4 for s in stripes}
        assert videos == {0, 1, 2}


# ---------------------------------------------------------------------- #
# Protocol conformance
# ---------------------------------------------------------------------- #
def test_builtin_components_satisfy_protocols():
    catalog = Catalog(num_videos=4, num_stripes=2, duration=8)
    assert isinstance(ConnectionMatcher([1, 1]), Solver)
    assert isinstance(PreloadingScheduler(catalog), RequestScheduler)
    assert isinstance(ImmediateRequestScheduler(catalog), RequestScheduler)
    assert isinstance(ChurnSchedule([Outage(0, 1, 2)]), ChurnModel)
    assert isinstance(ZipfDemandWorkload(arrival_rate=1.0, random_state=0), DemandGenerator)


def test_non_components_fail_protocol_checks():
    assert not isinstance(object(), Solver)
    assert not isinstance(object(), RequestScheduler)
    assert not isinstance(object(), ChurnModel)


# ---------------------------------------------------------------------- #
# Legacy deprecation shim
# ---------------------------------------------------------------------- #
def test_top_level_vodsimulator_warns_and_resolves():
    repro._warned_aliases.clear()  # re-arm the one-shot warning
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        legacy = repro.VodSimulator
    deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    # stacklevel=2 must attribute the warning to this file (the caller of
    # the attribute access), not to repro/__init__.py.
    assert deprecations[0].filename == __file__
    from repro.sim.engine import VodSimulator

    assert legacy is VodSimulator


def test_top_level_vodsimulator_warns_exactly_once():
    repro._warned_aliases.clear()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        first = repro.VodSimulator
        second = repro.VodSimulator
    assert first is second
    deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1


def test_engine_path_does_not_warn():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        from repro.sim.engine import VodSimulator  # noqa: F401
        from repro.sim import VodSimulator as sim_alias  # noqa: F401
    assert not [w for w in caught if issubclass(w.category, DeprecationWarning)]


def test_unknown_top_level_attribute_raises():
    with pytest.raises(AttributeError):
        repro.definitely_not_a_name


def test_star_import_does_not_warn():
    # VodSimulator stays resolvable (with a warning) but out of __all__, so
    # wildcard imports under warnings-as-errors keep working.
    assert "VodSimulator" not in repro.__all__
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        namespace = {}
        exec("from repro import *", namespace)
    assert "VodSystem" in namespace
    assert "VodSimulator" not in namespace
