"""Scenario spec, registry and compiler tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.preloading import Demand
from repro.scenarios.build import build_scenario
from repro.scenarios.phases import PhasedWorkload, WorkloadPhase
from repro.scenarios.registry import all_scenarios, get_scenario, register, scenario_names
from repro.scenarios.spec import (
    AllocationSpec,
    CatalogSpec,
    ChurnSpec,
    PopulationSpec,
    ScenarioSpec,
    WorkloadPhaseSpec,
)
from repro.workloads.base import StaticDemandSchedule


def _minimal_spec(**overrides) -> ScenarioSpec:
    base = dict(
        name="mini",
        description="minimal test scenario",
        catalog=CatalogSpec(num_videos=4, num_stripes=3, duration=6),
        population=PopulationSpec("homogeneous", {"n": 12, "u": 2.0, "d": 2.0}),
        allocation=AllocationSpec("permutation", replicas_per_stripe=2),
        workload=(WorkloadPhaseSpec("uniform", params={"arrival_rate": 1.0}),),
        horizon=6,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestSpecValidation:
    def test_unknown_population_kind(self):
        with pytest.raises(ValueError, match="population kind"):
            PopulationSpec("exotic", {})

    def test_unknown_allocation_scheme(self):
        with pytest.raises(ValueError, match="allocation scheme"):
            AllocationSpec("striped")

    def test_unknown_workload_kind(self):
        with pytest.raises(ValueError, match="workload kind"):
            WorkloadPhaseSpec("bursty")

    def test_phase_window_ordering(self):
        with pytest.raises(ValueError, match="after its start"):
            WorkloadPhaseSpec("uniform", start=5, stop=5, params={"arrival_rate": 1.0})

    def test_scenario_requires_workload(self):
        with pytest.raises(ValueError, match="workload phase"):
            _minimal_spec(workload=())

    def test_scenario_rejects_unknown_solver(self):
        with pytest.raises(ValueError, match="solver"):
            _minimal_spec(solver="simplex")

    def test_churn_validation(self):
        with pytest.raises(ValueError):
            ChurnSpec(failure_probability=1.5, outage_duration=2)
        with pytest.raises(ValueError):
            ChurnSpec(failure_probability=0.1, outage_duration=0)


class TestSerialization:
    @pytest.mark.parametrize("name", scenario_names())
    def test_registry_specs_roundtrip_through_json_dicts(self, name):
        spec = get_scenario(name)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_golden_embedded_specs_serialize_byte_stable(self):
        """Pre-existing golden spec dicts survive the workload tier untouched.

        The tier added new *values* to the kind enums but no new
        ScenarioSpec fields, so parsing and re-serializing each committed
        golden's embedded spec must reproduce the committed JSON byte for
        byte (canonical form).  A mismatch means a new field leaked into
        default serialization instead of being omitted-when-default.
        """
        import json
        from pathlib import Path

        golden_dir = Path(__file__).parent / "golden"
        checked = 0
        for path in sorted(golden_dir.glob("*.json")):
            embedded = json.loads(path.read_text())["spec"]
            reserialized = ScenarioSpec.from_dict(embedded).to_dict()
            canonical = lambda d: json.dumps(d, sort_keys=True, separators=(",", ":"))
            assert canonical(reserialized) == canonical(embedded), (
                f"embedded spec of {path.name} changed shape on round-trip"
            )
            checked += 1
        assert checked >= 13  # the 9 pre-existing + the 4 workload-tier goldens

    def test_churn_and_overrides_roundtrip(self):
        spec = _minimal_spec(
            churn=ChurnSpec(0.05, 3, protected_boxes=(0, 1)),
            solver="dinic",
            warm_start=False,
            default_seed=9,
        )
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.churn.protected_boxes == (0, 1)

    def test_with_overrides(self):
        spec = _minimal_spec()
        tweaked = spec.with_overrides(horizon=3, solver="push_relabel", warm_start=False)
        assert tweaked.horizon == 3
        assert tweaked.solver == "push_relabel"
        assert not tweaked.warm_start
        # Untouched fields carry over.
        assert tweaked.catalog == spec.catalog
        assert spec.horizon == 6


class TestRegistry:
    def test_registry_has_the_eight_scenarios(self):
        assert len(scenario_names()) >= 8
        for spec in all_scenarios():
            assert spec.description
            assert spec.paper_claim

    def test_unknown_scenario_lookup(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("does_not_exist")

    def test_duplicate_registration_refused(self):
        spec = get_scenario("steady_state")
        with pytest.raises(ValueError, match="already registered"):
            register(spec)
        register(spec, overwrite=True)  # explicit overwrite is allowed


class TestCompiler:
    def test_same_seed_builds_identical_components(self):
        spec = get_scenario("churn_storm")
        a = build_scenario(spec, seed=5)
        b = build_scenario(spec, seed=5)
        assert np.array_equal(a.allocation.replica_box, b.allocation.replica_box)
        assert a.churn is not None and b.churn is not None
        assert a.churn.outages == b.churn.outages
        assert np.array_equal(a.population.uploads, b.population.uploads)

    def test_different_seeds_build_different_allocations(self):
        spec = get_scenario("steady_state")
        a = build_scenario(spec, seed=1)
        b = build_scenario(spec, seed=2)
        assert not np.array_equal(a.allocation.replica_box, b.allocation.replica_box)

    def test_default_seed_is_used(self):
        spec = _minimal_spec(default_seed=17)
        assert build_scenario(spec).seed == 17

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            build_scenario(_minimal_spec(), seed=-1)

    def test_two_class_population_is_built(self):
        compiled = build_scenario(get_scenario("hetero_upload_tiers"), seed=0)
        uploads = compiled.population.uploads
        assert set(np.unique(uploads)) == {1.0, 3.0}

    def test_run_executes_for_horizon(self):
        compiled = build_scenario(_minimal_spec(), seed=1)
        result = compiled.run()
        assert result.metrics.rounds == 6

    @pytest.mark.parametrize(
        "kind,params",
        [
            ("zipf", {"arrival_rate": 1.0, "exponent": 0.7}),
            ("uniform", {"arrival_rate": 1.0}),
            ("flashcrowd", {"target_videos": [0], "max_members": 5}),
            (
                "staggered_flashcrowd",
                {"target_videos": [0, 1], "start_times": [0, 2], "max_members": 4},
            ),
            ("sequential", {"boxes": [0, 1, 2], "playlist": [0, 1]}),
            ("missing_video", {"max_demands_per_round": 2, "respect_growth": True}),
            ("least_replicated", {"num_target_videos": 1}),
            ("cold_start", {"max_demands_per_round": 2}),
            ("drift", {"arrival_rate": 1.0, "exponent": 0.9, "drift_period": 2}),
            (
                "flash_rotation",
                {"arrival_rate": 1.0, "hot_videos": 2, "rotation_period": 2,
                 "boost": 4.0},
            ),
        ],
    )
    def test_every_workload_kind_compiles_and_runs(self, kind, params):
        spec = _minimal_spec(
            workload=(WorkloadPhaseSpec(kind, params=params),), horizon=3
        )
        result = build_scenario(spec, seed=2).run()
        assert result.metrics.rounds == 3

    @pytest.mark.parametrize(
        "scheme,params",
        [("independent", {"on_full": "redraw"}), ("round_robin", {"offset": 1})],
    )
    def test_every_allocation_scheme_compiles(self, scheme, params):
        spec = _minimal_spec(
            allocation=AllocationSpec(scheme, replicas_per_stripe=2, params=params)
        )
        compiled = build_scenario(spec, seed=3)
        assert compiled.allocation.scheme == scheme

    def test_trace_workload_compiles_and_runs(self):
        # The bundled fixture was recorded over 16 videos, so the trace
        # kind gets its own catalog rather than the 4-video minimal one.
        spec = _minimal_spec(
            catalog=CatalogSpec(num_videos=16, num_stripes=3, duration=6),
            population=PopulationSpec("homogeneous", {"n": 24, "u": 2.0, "d": 4.0}),
            workload=(WorkloadPhaseSpec("trace", params={"trace": "zipf_small"}),),
            horizon=3,
        )
        result = build_scenario(spec, seed=2).run()
        assert result.metrics.rounds == 3

    def test_hierarchical_cache_allocation_compiles(self):
        tiers = {"cdn_count": 2, "vcdn_count": 4, "mucdn_count": 6, "client_count": 0}
        spec = _minimal_spec(
            population=PopulationSpec("tiered", tiers),
            allocation=AllocationSpec(
                "hierarchical_cache", replicas_per_stripe=2, params=tiers
            ),
        )
        compiled = build_scenario(spec, seed=3)
        assert compiled.allocation.scheme == "hierarchical_cache"
        assert compiled.population.n == 12

    def test_pareto_population_compiles(self):
        spec = _minimal_spec(
            population=PopulationSpec(
                "pareto",
                {"n": 12, "u_min": 1.0, "shape": 2.0, "storage_per_upload": 2.0,
                 "u_cap": 4.0},
            )
        )
        compiled = build_scenario(spec, seed=4)
        assert compiled.population.n == 12
        assert compiled.population.max_upload <= 4.0


class TestPhasedWorkload:
    def test_requires_at_least_one_phase(self):
        with pytest.raises(ValueError, match="at least one phase"):
            PhasedWorkload(())

    def test_window_gating_and_dedup(self):
        demands_a = [Demand(time=t, box_id=0, video_id=0) for t in range(4)]
        demands_b = [Demand(time=t, box_id=0, video_id=1) for t in range(4)] + [
            Demand(time=t, box_id=1, video_id=1) for t in range(4)
        ]
        workload = PhasedWorkload(
            [
                WorkloadPhase(StaticDemandSchedule(demands_a), start=0, stop=2),
                WorkloadPhase(StaticDemandSchedule(demands_b), start=1),
            ]
        )

        class _View:
            free_boxes = np.array([0, 1], dtype=np.int64)

            def __init__(self, time):
                self.time = time

        # Round 0: only phase A is active.
        round0 = workload.demands_for_round(_View(0))
        assert [(d.box_id, d.video_id) for d in round0] == [(0, 0)]
        # Round 1: both active; box 0 deduped in favour of phase A.
        round1 = workload.demands_for_round(_View(1))
        assert [(d.box_id, d.video_id) for d in round1] == [(0, 0), (1, 1)]
        # Round 2: phase A's window is over.
        round2 = workload.demands_for_round(_View(2))
        assert [(d.box_id, d.video_id) for d in round2] == [(0, 1), (1, 1)]
