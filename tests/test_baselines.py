"""Tests for the baselines (full replication, sourcing-only, central server)."""

import numpy as np
import pytest

from repro.baselines.central_server import CentralServerModel
from repro.baselines.full_replication import (
    full_replication_allocation,
    max_catalog_full_replication,
)
from repro.baselines.hierarchy import (
    hierarchical_cache_allocation,
    tier_layout,
    tiered_population,
)
from repro.baselines.sourcing_only import (
    SourcingOnlyPossessionIndex,
    sourcing_capacity_bound,
)
from repro.core.allocation import AllocationError, random_permutation_allocation
from repro.core.matching import ConnectionMatcher, PossessionIndex, RequestSet, StripeRequest
from repro.core.parameters import homogeneous_population
from repro.core.video import Catalog


class TestFullReplication:
    def test_catalog_cap_is_constant_in_n(self):
        assert max_catalog_full_replication(d=2.0, c=4) == 8
        # Independent of n: the cap depends only on per-box storage.
        assert max_catalog_full_replication(d=2.0, c=4) == max_catalog_full_replication(2.0, 4)

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            max_catalog_full_replication(0.0, 4)
        with pytest.raises(ValueError):
            max_catalog_full_replication(2.0, 0)

    def test_every_box_stores_every_video(self):
        catalog = Catalog(num_videos=6, num_stripes=4, duration=20)
        population = homogeneous_population(12, u=0.8, d=2.0)
        allocation = full_replication_allocation(catalog, population, replicas_per_stripe=3)
        c = 4
        for box in range(population.n):
            videos = set((allocation.stripes_on_box(box) // c).tolist())
            assert videos == set(range(6))

    def test_catalog_exceeding_storage_rejected(self):
        catalog = Catalog(num_videos=10, num_stripes=4, duration=20)
        population = homogeneous_population(12, u=0.8, d=2.0)  # 8 slots < 10 videos
        with pytest.raises(AllocationError):
            full_replication_allocation(catalog, population)

    def test_replication_exceeding_population_rejected(self):
        catalog = Catalog(num_videos=4, num_stripes=4, duration=20)
        population = homogeneous_population(8, u=0.8, d=2.0)
        with pytest.raises(AllocationError):
            full_replication_allocation(catalog, population, replicas_per_stripe=20)

    def test_default_replication(self):
        catalog = Catalog(num_videos=4, num_stripes=4, duration=20)
        population = homogeneous_population(12, u=0.8, d=2.0)
        allocation = full_replication_allocation(catalog, population)
        assert allocation.replicas_per_stripe == 3  # n // c
        assert allocation.scheme == "full_replication"

    def test_stripe_distribution_rotates(self):
        catalog = Catalog(num_videos=4, num_stripes=4, duration=20)
        population = homogeneous_population(8, u=0.8, d=2.0)
        allocation = full_replication_allocation(catalog, population, replicas_per_stripe=2)
        # Every stripe has at least one distinct holder, loads are balanced.
        assert np.all(allocation.distinct_coverage() >= 1)
        loads = allocation.box_loads()
        assert loads.max() - loads.min() <= 4


class TestSourcingOnly:
    def test_cache_servers_always_empty(self):
        catalog = Catalog(num_videos=6, num_stripes=4, duration=20)
        population = homogeneous_population(12, u=1.5, d=3.0)
        allocation = random_permutation_allocation(catalog, population, 3, random_state=0)
        index = SourcingOnlyPossessionIndex(allocation, cache_window=20)
        index.record_download(stripe_id=0, box_id=5, time=0)
        request = StripeRequest(stripe_id=0, request_time=3, box_id=7)
        # The cache entry is ignored; only allocation holders serve.
        servers = index.servers_for(request, current_time=3)
        assert servers == set(allocation.boxes_with_stripe(0).tolist())

    def test_sourcing_only_is_strictly_weaker(self):
        # A request profile feasible with swarming but not with sourcing only.
        catalog = Catalog(num_videos=2, num_stripes=2, duration=30)
        population = homogeneous_population(10, u=1.0, d=1.0)
        allocation = random_permutation_allocation(catalog, population, 2, random_state=1)
        matcher = ConnectionMatcher(population.upload_slots(2))
        swarming = PossessionIndex(allocation, cache_window=30)
        sourcing = SourcingOnlyPossessionIndex(allocation, cache_window=30)
        for index in (swarming, sourcing):
            for box in range(5):
                index.record_download(stripe_id=0, box_id=box, time=0)
        requests = RequestSet(
            [StripeRequest(stripe_id=0, request_time=1, box_id=5 + i) for i in range(5)]
        )
        assert matcher.match(requests, swarming, current_time=1).feasible
        assert not matcher.match(requests, sourcing, current_time=1).feasible

    def test_sourcing_capacity_bound(self):
        catalog = Catalog(num_videos=6, num_stripes=4, duration=20)
        population = homogeneous_population(12, u=1.5, d=3.0)
        allocation = random_permutation_allocation(catalog, population, 3, random_state=0)
        assert sourcing_capacity_bound(allocation) == 12 * 6 // 4


class TestCentralServer:
    def test_pure_server_capacity(self):
        server = CentralServerModel(upload_capacity=100.0, storage_capacity=5000.0)
        assert server.max_concurrent_viewers() == pytest.approx(100.0)
        assert server.can_serve(100)
        assert not server.can_serve(101)
        # Peer upload does not help a non-assisted server.
        assert server.max_concurrent_viewers(peer_upload_total=500.0) == pytest.approx(100.0)

    def test_peer_assisted_capacity(self):
        server = CentralServerModel(
            upload_capacity=100.0, storage_capacity=5000.0, peer_assisted=True
        )
        assert server.max_concurrent_viewers(peer_upload_total=400.0) == pytest.approx(500.0)
        assert server.can_serve(450, peer_upload_total=400.0)

    def test_required_server_upload(self):
        server = CentralServerModel(
            upload_capacity=100.0, storage_capacity=5000.0, peer_assisted=True
        )
        assert server.required_server_upload(500, peer_upload_total=400.0) == pytest.approx(100.0)
        assert server.required_server_upload(300, peer_upload_total=400.0) == 0.0

    def test_catalog_bounded_by_server_storage(self):
        server = CentralServerModel(upload_capacity=10.0, storage_capacity=123.0)
        assert server.catalog_size == 123

    def test_validation(self):
        with pytest.raises(ValueError):
            CentralServerModel(upload_capacity=0.0, storage_capacity=10.0)
        server = CentralServerModel(upload_capacity=10.0, storage_capacity=10.0)
        with pytest.raises(ValueError):
            server.can_serve(-1)
        with pytest.raises(ValueError):
            server.required_server_upload(-1)

    def test_describe(self):
        server = CentralServerModel(upload_capacity=10.0, storage_capacity=10.0)
        assert server.describe()["catalog_size"] == 10


class TestHierarchicalCdn:
    PARAMS = {"cdn_count": 2, "vcdn_count": 4, "mucdn_count": 8, "client_count": 10}

    def _population(self):
        return tiered_population(self.PARAMS)

    def test_tiered_population_layout_is_deterministic(self):
        pop = self._population()
        layout = tier_layout(self.PARAMS)
        assert pop.n == layout.n == 24
        # CDN boxes come first, then vCDN, then muCDN, then clients.
        assert pop.storages[layout.slice_of("cdn")].min() > pop.storages[
            layout.slice_of("vcdn")
        ].max()
        assert np.all(pop.storages[layout.slice_of("client")] == 0.0)
        np.testing.assert_array_equal(layout.boxes_of("cdn"), [0, 1])
        np.testing.assert_array_equal(layout.boxes_of("vcdn"), [2, 3, 4, 5])

    def test_tier_parameter_overrides(self):
        pop = tiered_population({**self.PARAMS, "vcdn_u": 9.0, "client_count": 0})
        assert pop.n == 14
        assert np.all(pop.uploads[2:6] == 9.0)

    def test_empty_layout_rejected(self):
        with pytest.raises(ValueError, match="every <tier>_count is 0"):
            tiered_population(
                {"cdn_count": 0, "vcdn_count": 0, "mucdn_count": 0, "client_count": 0}
            )

    def test_allocation_places_origin_copies_on_cdn(self):
        catalog = Catalog(num_videos=10, num_stripes=4, duration=10)
        pop = self._population()
        alloc = hierarchical_cache_allocation(
            catalog, pop, 3, params=self.PARAMS, random_state=5
        )
        assert alloc.scheme == "hierarchical_cache"
        assert alloc.respects_storage()
        replicas = alloc.replica_box.reshape(catalog.total_stripes, 3)
        layout = tier_layout(self.PARAMS)
        cdn = set(layout.boxes_of("cdn").tolist())
        assert set(replicas[:, 0].tolist()) <= cdn

    def test_helper_replicas_cache_whole_videos(self):
        catalog = Catalog(num_videos=10, num_stripes=4, duration=10)
        alloc = hierarchical_cache_allocation(
            catalog, self._population(), 3, params=self.PARAMS, random_state=5
        )
        replicas = alloc.replica_box.reshape(catalog.num_videos, 4, 3)
        for v in range(catalog.num_videos):
            for j in range(3):
                # Each replica slot holds all c stripes of the video on one box.
                assert np.unique(replicas[v, :, j]).size == 1
            # And no box carries two replicas of the same video.
            assert np.unique(replicas[v, 0, :]).size == 3

    def test_allocation_is_deterministic_per_rng(self):
        catalog = Catalog(num_videos=10, num_stripes=4, duration=10)
        pop = self._population()
        a = hierarchical_cache_allocation(catalog, pop, 3, params=self.PARAMS, random_state=5)
        b = hierarchical_cache_allocation(catalog, pop, 3, params=self.PARAMS, random_state=5)
        np.testing.assert_array_equal(a.replica_box, b.replica_box)

    def test_layout_population_mismatch_rejected(self):
        catalog = Catalog(num_videos=4, num_stripes=4, duration=10)
        pop = homogeneous_population(8, u=2.0, d=3.0)
        with pytest.raises(AllocationError, match="same <tier>_count"):
            hierarchical_cache_allocation(catalog, pop, 2, params=self.PARAMS)

    def test_origin_tier_required(self):
        params = {**self.PARAMS, "cdn_count": 0}
        catalog = Catalog(num_videos=4, num_stripes=4, duration=10)
        with pytest.raises(AllocationError, match="at least one CDN origin box"):
            hierarchical_cache_allocation(
                catalog, tiered_population(params), 2, params=params
            )

    def test_cdn_overflow_is_actionable(self):
        params = {
            "cdn_count": 1,
            "cdn_d": 1.0,
            "vcdn_count": 4,
            "mucdn_count": 4,
            "client_count": 0,
        }
        catalog = Catalog(num_videos=10, num_stripes=4, duration=10)
        with pytest.raises(AllocationError, match="CDN tier overflow"):
            hierarchical_cache_allocation(
                catalog, tiered_population(params), 2, params=params, random_state=0
            )

    def test_helper_overflow_is_actionable(self):
        params = {
            "cdn_count": 2,
            "vcdn_count": 1,
            "vcdn_d": 1.0,
            "mucdn_count": 0,
            "client_count": 0,
        }
        catalog = Catalog(num_videos=8, num_stripes=4, duration=10)
        with pytest.raises(AllocationError, match="helper tiers overflow"):
            hierarchical_cache_allocation(
                catalog, tiered_population(params), 3, params=params, random_state=0
            )

    def test_hot_videos_prefer_vcdn_caches(self):
        """Popularity-first fill: the hottest videos land on the vCDN tier."""
        params = {
            "cdn_count": 2,
            "vcdn_count": 2,
            "vcdn_d": 8.0,
            "mucdn_count": 8,
            "mucdn_d": 8.0,
            "client_count": 0,
        }
        catalog = Catalog(num_videos=12, num_stripes=4, duration=10)
        alloc = hierarchical_cache_allocation(
            catalog, tiered_population(params), 2, params=params, random_state=1
        )
        layout = tier_layout(params)
        vcdn = set(layout.boxes_of("vcdn").tolist())
        replicas = alloc.replica_box.reshape(catalog.num_videos, 4, 2)
        # Each vCDN box holds 8 video-cache slots (d=8, c=4 -> 32 slots / 4);
        # the first 2*8=16 helper replicas, i.e. the hottest videos, fill
        # them before any muCDN box is touched.
        helpers = [int(replicas[v, 0, 1]) for v in range(catalog.num_videos)]
        assert all(h in vcdn for h in helpers[:4])
