"""The VodSystem facade and the stepwise VodSession lifecycle."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import (
    AdmissionError,
    ApiError,
    ComponentLookupError,
    RoundReport,
    SessionClosedError,
    VodSession,
    VodSystem,
)
from repro.core.allocation import AllocationError
from repro.core.preloading import Demand
from repro.scenarios.build import build_scenario
from repro.scenarios.registry import get_scenario
from repro.sim.churn import ChurnSchedule, Outage


def small_system(n=24, m=8, c=4, u=2.0, d=3.0, k=4, mu=1.5, seed=7) -> VodSystem:
    system = VodSystem.configure(
        catalog={"num_videos": m, "num_stripes": c, "duration": 10},
        population=("homogeneous", {"n": n, "u": u, "d": d}),
        mu=mu,
    )
    system.allocate("permutation", replicas_per_stripe=k, seed=seed)
    return system


# ---------------------------------------------------------------------- #
# Facade construction
# ---------------------------------------------------------------------- #
def test_build_simulator_requires_allocation():
    system = VodSystem.configure(
        catalog={"num_videos": 4, "num_stripes": 2, "duration": 8},
        population=("homogeneous", {"n": 8, "u": 2.0, "d": 2.0}),
    )
    with pytest.raises(ApiError):
        system.build_simulator()


def test_build_simulator_rejects_unknown_solver():
    with pytest.raises(ComponentLookupError):
        small_system().build_simulator(solver="simplex")


def test_scheduler_resolved_by_name():
    engine = small_system().build_simulator(scheduler="immediate")
    assert type(engine.scheduler).__name__ == "ImmediateRequestScheduler"


def test_adopt_allocation_rejects_mismatches():
    system_a = small_system(n=24)
    system_b = small_system(n=16, k=3)
    with pytest.raises(ApiError):
        system_a.adopt_allocation(system_b.allocation)


def test_adopt_allocation_rejects_same_size_different_capacities():
    # Same n, but the allocation was drawn over a 2x-upload population: the
    # engine would enforce capacities the facade does not report.
    system_a = small_system(n=24, u=1.0)
    system_b = small_system(n=24, u=2.0)
    with pytest.raises(ApiError, match="population"):
        system_a.adopt_allocation(system_b.allocation)


def test_adopt_allocation_accepts_equivalent_population():
    system_a = small_system(n=24, seed=7)
    system_b = small_system(n=24, seed=9)  # distinct but equal-capacity pop
    adopted = system_a.adopt_allocation(system_b.allocation)
    assert system_a.allocation is adopted


def test_run_requires_workload():
    with pytest.raises(ApiError):
        small_system().run(None, num_rounds=3)


def test_invalid_workload_spec_rejected():
    with pytest.raises(ApiError):
        small_system().open_session(workload=42)


def test_workload_spec_honors_explicit_mu_override():
    # Same semantics as the scenario compiler: params["mu"] beats system mu.
    system = small_system(mu=1.5)
    session = system.open_session(
        workload=("flashcrowd", {"mu": 3.0, "target_videos": [0]}),
        workload_seed=1,
        horizon=4,
    )
    assert session._workload._mu == 3.0
    default = system.open_session(
        workload=("flashcrowd", {"target_videos": [0]}), workload_seed=1, horizon=4
    )
    assert default._workload._mu == 1.5


# ---------------------------------------------------------------------- #
# Stepwise execution equals batch execution
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("name", ["steady_state", "flashcrowd_spike"])
def test_session_rounds_equal_batch_rounds(name):
    spec = get_scenario(name)
    rounds = min(spec.horizon, 10)
    batch = build_scenario(spec).run(rounds)

    session = build_scenario(spec).session(horizon=rounds)
    reports = [session.step() for _ in range(rounds)]

    assert len(batch.metrics.round_stats) == len(reports)
    for stats, report in zip(batch.metrics.round_stats, reports):
        assert stats.time == report.time
        assert stats.active_requests == report.active_requests
        assert stats.new_requests == report.new_requests
        assert stats.matched == report.matched
        assert stats.unmatched == report.unmatched
        assert stats.feasible == report.feasible
        assert stats.upload_used == report.upload_used
        assert stats.upload_capacity == report.upload_capacity

    # The aggregated result agrees too.
    result = session.result()
    assert result.metrics.to_dict() == batch.metrics.to_dict()


def test_step_until_and_remaining_rounds():
    session = build_scenario(get_scenario("steady_state")).session(horizon=8)
    first = session.step_until(rounds=3)
    assert [r.time for r in first] == [0, 1, 2]
    assert session.remaining_rounds == 5
    rest = session.step_until(round=8)
    assert [r.time for r in rest] == [3, 4, 5, 6, 7]
    assert session.closed
    assert session.digest() == session.digest()


def test_step_until_argument_validation():
    session = build_scenario(get_scenario("steady_state")).session(horizon=8)
    with pytest.raises(ValueError):
        session.step_until()
    with pytest.raises(ValueError):
        session.step_until(round=3, rounds=3)
    with pytest.raises(ValueError):
        session.step_until(rounds=-1)
    session.step_until(rounds=4)
    with pytest.raises(ValueError):
        session.step_until(round=2)


# ---------------------------------------------------------------------- #
# Typed errors: exhausted horizon, closed session
# ---------------------------------------------------------------------- #
def test_step_past_horizon_raises_session_closed():
    session = small_system().open_session(horizon=2)
    session.step()
    session.step()
    with pytest.raises(SessionClosedError):
        session.step()


def test_explicit_close_refuses_steps_and_submissions():
    session = small_system().open_session(horizon=10)
    session.step()
    session.close()
    with pytest.raises(SessionClosedError):
        session.step()
    with pytest.raises(SessionClosedError):
        session.submit(0, 0)


def test_run_to_horizon_requires_bounded_session():
    session = small_system().open_session(horizon=None)
    with pytest.raises(ValueError):
        session.run_to_horizon()


def test_run_to_horizon_completes_and_reports():
    session = small_system().open_session(
        workload=("zipf", {"arrival_rate": 2.0}), workload_seed=3, horizon=6
    )
    result = session.run_to_horizon()
    assert result.metrics.rounds == 6
    assert session.closed


# ---------------------------------------------------------------------- #
# Online admission
# ---------------------------------------------------------------------- #
def test_submitted_demand_is_served_next_step():
    session = small_system().open_session(horizon=6)
    assert session.submit_demands([(3, 1)]) == 1
    assert session.pending_demands == ((3, 1),)
    report = session.step()
    assert report.demands_injected == 1
    # One preload request issued at the demand round.
    assert report.new_requests == 1
    assert report.matched == 1
    # c−1 postponed requests follow next round.
    follow_up = session.step()
    assert follow_up.new_requests == 3


def test_submit_busy_box_raises_admission_error():
    session = small_system().open_session(horizon=12)
    session.submit(5, 0)
    session.step()
    # Box 5 now plays for `duration` rounds.
    with pytest.raises(AdmissionError, match="busy"):
        session.submit(5, 1)


def test_submit_offline_box_raises_admission_error():
    system = small_system()
    churn = ChurnSchedule([Outage(box_id=4, start=0, end=5)])
    session = system.open_session(horizon=8, churn=churn)
    with pytest.raises(AdmissionError, match="offline"):
        session.submit(4, 0)
    # Other boxes admit fine.
    session.submit(5, 0)


def test_submit_out_of_range_raises_admission_error():
    session = small_system(n=24, m=8).open_session(horizon=4)
    with pytest.raises(AdmissionError, match="box"):
        session.submit(24, 0)
    with pytest.raises(AdmissionError, match="video"):
        session.submit(0, 8)


def test_double_queue_same_box_raises():
    session = small_system().open_session(horizon=4)
    session.submit(2, 0)
    with pytest.raises(AdmissionError, match="already"):
        session.submit(2, 1)


def test_demand_object_with_wrong_round_rejected():
    session = small_system().open_session(horizon=4)
    with pytest.raises(AdmissionError, match="dated"):
        session.submit_demands([Demand(time=3, box_id=0, video_id=0)])
    # A correctly dated Demand is accepted.
    assert session.submit_demands([Demand(time=0, box_id=0, video_id=0)]) == 1


def test_injected_demands_take_precedence_over_background_workload():
    # The background generator and the injection target the same box: the
    # injected demand wins, the generator's duplicate is dropped.
    system = small_system()
    session = system.open_session(
        workload=("flashcrowd", {"target_videos": [0], "max_members": 4}),
        workload_seed=5,
        horizon=4,
    )
    session.submit(0, 3)
    report = session.step()
    assert report.demands_injected == 1


# ---------------------------------------------------------------------- #
# Live reconfiguration
# ---------------------------------------------------------------------- #
def test_set_capacity_changes_round_capacity():
    system = small_system(n=24, u=2.0, c=4)
    session = system.open_session(horizon=6)
    before = session.step()
    new_slots = session.set_capacity(0, 4.0)
    assert new_slots == 16
    after = session.step()
    assert after.upload_capacity == before.upload_capacity + 8
    with pytest.raises(ValueError):
        session.set_capacity(99, 1.0)
    with pytest.raises(ValueError):
        session.set_capacity(0, -1.0)


def test_join_boxes_extends_population_and_serves_them():
    system = small_system()
    session = system.open_session(horizon=8)
    session.step()
    new_ids = session.join_boxes(uploads=[2.0, 2.0], storages=[0.0, 0.0])
    assert new_ids == [24, 25]
    assert session.engine.population.n == 26
    # A new box can demand a video and be served by the old population.
    session.submit(24, 0)
    report = session.step()
    assert report.demands_injected == 1
    assert report.matched == report.active_requests
    # Capacity grew by 2 boxes × ⌊2.0·4⌋ slots.
    assert report.upload_capacity == 24 * 8 + 2 * 8


def test_add_videos_extends_catalog_and_serves_demand():
    system = small_system(m=8, d=3.0, k=4)
    session = system.open_session(horizon=8)
    session.step()
    new_ids = session.add_videos(2, random_state=11)
    assert new_ids == [8, 9]
    assert session.engine.catalog.num_videos == 10
    allocation = session.engine.allocation
    assert allocation.num_stripes == 10 * 4
    assert allocation.respects_storage()
    # Every new stripe has k replicas placed.
    for stripe in range(8 * 4, 10 * 4):
        assert allocation.replica_boxes_of_stripe(stripe).size == 4
    session.submit(1, 9)
    report = session.step()
    assert report.matched == report.active_requests


def test_add_videos_precondition_failure_leaves_engine_untouched():
    """A scheduler without update_catalog fails BEFORE any mutation."""

    class MinimalScheduler:
        # Implements exactly the RequestScheduler protocol, nothing more.
        start_up_delay = 1

        def on_demand(self, demand, locally_stored=None):
            return []

        def requests_due(self, time):
            return []

    system = small_system()
    session = VodSession(
        system.build_simulator(scheduler=MinimalScheduler()), horizon=4
    )
    engine = session.engine
    catalog_before = engine.catalog
    allocation_before = engine.allocation
    with pytest.raises(RuntimeError, match="update_catalog"):
        session.add_videos(1)
    assert engine.catalog is catalog_before
    assert engine.allocation is allocation_before
    # Demands for the existing catalog still behave.
    session.submit(0, 0)
    assert session.step().demands_injected == 1


def test_add_videos_requires_free_storage():
    # d=1.34, c=4 ⇒ 5 slots/box sized for exactly m*k/n... fill it tight:
    # n=8 boxes × 5 slots = 40 slots; catalog 5 videos × 4 stripes × k=2 = 40.
    system = VodSystem.configure(
        catalog={"num_videos": 5, "num_stripes": 4, "duration": 6},
        population=("homogeneous", {"n": 8, "u": 2.0, "d": 1.25}),
    )
    system.allocate("permutation", replicas_per_stripe=2, seed=1)
    session = system.open_session(horizon=4)
    with pytest.raises(AllocationError):
        session.add_videos(1)


def test_mutations_preserve_snapshot_determinism():
    def drive(session):
        session.step()
        session.join_boxes([2.0], [0.0])
        session.set_capacity(0, 3.0)
        session.add_videos(1, random_state=13)
        session.submit(24, 8)
        return [session.step().to_dict() for _ in range(3)]

    a = small_system().open_session(horizon=8)
    b = small_system().open_session(horizon=8)
    assert drive(a) == drive(b)


# ---------------------------------------------------------------------- #
# RoundReport serialization
# ---------------------------------------------------------------------- #
def test_round_report_json_round_trip():
    session = small_system().open_session(
        workload=("zipf", {"arrival_rate": 2.0}), workload_seed=1, horizon=3
    )
    report = session.step()
    payload = json.dumps(report.to_dict(), sort_keys=True)
    rebuilt = RoundReport.from_dict(json.loads(payload))
    assert rebuilt == report
    assert rebuilt.digest == report.digest
    assert all(
        isinstance(v, (int, bool)) for v in report.to_dict().values()
    ), "RoundReport.to_dict must emit native scalars"


def test_round_report_utilization():
    report = RoundReport(
        time=0,
        active_requests=4,
        new_requests=4,
        matched=4,
        unmatched=0,
        feasible=True,
        upload_used=4,
        upload_capacity=16,
        demands_injected=0,
        demands_rejected=0,
        playback_starts=0,
        offline_boxes=0,
    )
    assert report.utilization == 0.25
    zero = RoundReport.from_dict({**report.to_dict(), "upload_capacity": 0})
    assert zero.utilization == 0.0
