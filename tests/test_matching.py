"""Tests for repro.core.matching (requests, possession, Lemma 1 matching)."""

import numpy as np
import pytest

from repro.core.allocation import Allocation
from repro.core.matching import (
    _MAX_KEYABLE_STRIPE,
    ConnectionMatcher,
    PossessionIndex,
    RequestSet,
    SortKeyOverflowError,
    StripeRequest,
    check_feasibility_hall,
)
from repro.core.parameters import homogeneous_population
from repro.core.video import Catalog


def crafted_allocation(num_boxes=6, num_videos=3, c=2, k=2, duration=20):
    """A deterministic allocation: stripe s is stored on boxes (s, s+1) mod n."""
    catalog = Catalog(num_videos=num_videos, num_stripes=c, duration=duration)
    population = homogeneous_population(num_boxes, u=1.0, d=max(2.0, num_videos * c * k / num_boxes / c + 1))
    replica_box = np.empty(num_videos * c * k, dtype=np.int64)
    for stripe_id in range(num_videos * c):
        for j in range(k):
            replica_box[stripe_id * k + j] = (stripe_id + j) % num_boxes
    return Allocation(catalog, population, k, replica_box)


class TestStripeRequestAndRequestSet:
    def test_request_validation(self):
        with pytest.raises(ValueError):
            StripeRequest(stripe_id=-1, request_time=0, box_id=0)
        with pytest.raises(ValueError):
            StripeRequest(stripe_id=0, request_time=-1, box_id=0)

    def test_request_set_operations(self):
        rs = RequestSet()
        rs.add(StripeRequest(1, 0, 0))
        rs.extend([StripeRequest(1, 0, 1), StripeRequest(2, 0, 2)])
        assert len(rs) == 3
        assert rs.stripe_multiset() == [1, 1, 2]
        assert rs.distinct_stripes() == {1, 2}
        assert rs[0].stripe_id == 1

    def test_by_video_grouping(self):
        rs = RequestSet(
            [StripeRequest(0, 0, 0), StripeRequest(1, 0, 1), StripeRequest(4, 0, 2)]
        )
        groups = rs.by_video(num_stripes_per_video=2)
        assert set(groups) == {0, 2}
        assert len(groups[0]) == 2

    def test_preload_flag_not_part_of_identity(self):
        a = StripeRequest(1, 0, 0, is_preload=True)
        b = StripeRequest(1, 0, 0, is_preload=False)
        assert a == b


class TestPossessionIndex:
    def test_allocation_servers(self):
        alloc = crafted_allocation()
        index = PossessionIndex(alloc, cache_window=20)
        request = StripeRequest(stripe_id=0, request_time=0, box_id=5)
        servers = index.servers_for(request, current_time=0)
        assert servers == {0, 1}

    def test_cache_servers_require_earlier_request(self):
        alloc = crafted_allocation()
        index = PossessionIndex(alloc, cache_window=20)
        index.record_download(stripe_id=0, box_id=4, time=3)
        late = StripeRequest(stripe_id=0, request_time=5, box_id=5)
        early = StripeRequest(stripe_id=0, request_time=3, box_id=5)
        assert 4 in index.servers_for(late, current_time=5)
        assert 4 not in index.servers_for(early, current_time=5)

    def test_cache_eviction(self):
        alloc = crafted_allocation(duration=5)
        index = PossessionIndex(alloc, cache_window=5)
        index.record_download(stripe_id=0, box_id=4, time=0)
        index.evict_before(current_time=6)
        request = StripeRequest(stripe_id=0, request_time=5, box_id=5)
        assert 4 not in index.servers_for(request, current_time=6)

    def test_relay_cache_servers(self):
        alloc = crafted_allocation()
        index = PossessionIndex(alloc, cache_window=20)
        index.record_relay_cache(stripe_id=3, box_id=2)
        request = StripeRequest(stripe_id=3, request_time=0, box_id=5)
        assert 2 in index.servers_for(request, current_time=0)

    def test_swarm_size(self):
        alloc = crafted_allocation(c=2)
        index = PossessionIndex(alloc, cache_window=20)
        index.record_download(0, box_id=1, time=0)
        index.record_download(1, box_id=1, time=0)
        index.record_download(0, box_id=2, time=1)
        assert index.swarm_size(video_id=0, num_stripes_per_video=2) == 2
        assert index.swarm_size(video_id=1, num_stripes_per_video=2) == 0


class TestConnectionMatcher:
    def test_upload_slots_validation(self):
        with pytest.raises(ValueError):
            ConnectionMatcher([])
        with pytest.raises(ValueError):
            ConnectionMatcher([-1, 2])

    def test_empty_request_set_is_feasible(self):
        alloc = crafted_allocation()
        matcher = ConnectionMatcher(alloc.population.upload_slots(2))
        index = PossessionIndex(alloc, cache_window=20)
        result = matcher.match(RequestSet(), index, current_time=0)
        assert result.feasible
        assert result.matched == 0

    def test_single_request_is_matched_to_a_holder(self):
        alloc = crafted_allocation()
        matcher = ConnectionMatcher(alloc.population.upload_slots(2))
        index = PossessionIndex(alloc, cache_window=20)
        requests = RequestSet([StripeRequest(stripe_id=0, request_time=0, box_id=5)])
        result = matcher.match(requests, index, current_time=0)
        assert result.feasible
        assert int(result.assignment[0]) in {0, 1}
        assert result.box_load.sum() == 1

    def test_requesting_box_never_serves_itself(self):
        alloc = crafted_allocation()
        matcher = ConnectionMatcher(alloc.population.upload_slots(2))
        index = PossessionIndex(alloc, cache_window=20)
        # Box 0 stores stripe 0 but also requests it.
        requests = RequestSet([StripeRequest(stripe_id=0, request_time=0, box_id=0)])
        result = matcher.match(requests, index, current_time=0)
        assert result.feasible
        assert int(result.assignment[0]) == 1

    def test_capacity_exhaustion_is_infeasible_with_witness(self):
        # Each box can upload 2 stripes per round (u=1, c=2).  Stripe 0 is
        # held by boxes 0 and 1 only → at most 4 requests can be served.
        alloc = crafted_allocation(num_boxes=6, c=2, k=2)
        matcher = ConnectionMatcher(alloc.population.upload_slots(2))
        index = PossessionIndex(alloc, cache_window=20)
        requests = RequestSet(
            [StripeRequest(stripe_id=0, request_time=0, box_id=b) for b in range(2, 6)]
            + [StripeRequest(stripe_id=0, request_time=1, box_id=b) for b in range(2, 6)]
        )
        result = matcher.match(requests, index, current_time=1)
        assert not result.feasible
        assert result.matched == 4
        assert result.obstruction_witness is not None
        assert len(result.obstruction_witness) >= 1

    def test_busy_slots_reduce_capacity(self):
        alloc = crafted_allocation()
        slots = alloc.population.upload_slots(2)
        matcher = ConnectionMatcher(slots)
        index = PossessionIndex(alloc, cache_window=20)
        requests = RequestSet(
            [
                StripeRequest(stripe_id=0, request_time=0, box_id=3),
                StripeRequest(stripe_id=0, request_time=0, box_id=4),
                StripeRequest(stripe_id=0, request_time=0, box_id=5),
                StripeRequest(stripe_id=0, request_time=1, box_id=2),
            ]
        )
        # Without busy slots: boxes 0 and 1 can serve 2 each → feasible.
        assert matcher.match(requests, index, current_time=1).feasible
        # Mark box 0 fully busy: only box 1 remains with 2 slots → infeasible.
        busy = np.zeros(alloc.population.n, dtype=np.int64)
        busy[0] = slots[0]
        result = matcher.match(requests, index, current_time=1, busy_slots=busy)
        assert not result.feasible

    def test_busy_slots_validation(self):
        alloc = crafted_allocation()
        matcher = ConnectionMatcher(alloc.population.upload_slots(2))
        index = PossessionIndex(alloc, cache_window=20)
        with pytest.raises(ValueError):
            matcher.match(RequestSet(), index, 0, busy_slots=[1, 2])

    def test_cache_server_expands_capacity(self):
        # With only the allocation, 5 concurrent viewers of stripe 0 are
        # infeasible; a cache server (earlier viewer) makes them feasible.
        alloc = crafted_allocation(num_boxes=8, c=2, k=2)
        matcher = ConnectionMatcher(alloc.population.upload_slots(2))
        index = PossessionIndex(alloc, cache_window=20)
        requests = RequestSet(
            [StripeRequest(stripe_id=0, request_time=1, box_id=b) for b in range(2, 7)]
        )
        assert not matcher.match(requests, index, current_time=1).feasible
        index.record_download(stripe_id=0, box_id=7, time=0)
        assert matcher.match(requests, index, current_time=1).feasible


class TestHallOracle:
    def test_flow_matcher_agrees_with_hall_oracle(self):
        alloc = crafted_allocation(num_boxes=6, c=2, k=2)
        c = 2
        uploads = alloc.population.uploads
        matcher = ConnectionMatcher(alloc.population.upload_slots(c))
        index = PossessionIndex(alloc, cache_window=20)
        rng = np.random.default_rng(0)
        for trial in range(15):
            num_requests = int(rng.integers(1, 7))
            requests = RequestSet(
                [
                    StripeRequest(
                        stripe_id=int(rng.integers(alloc.num_stripes)),
                        request_time=0,
                        box_id=int(rng.integers(alloc.num_boxes)),
                    )
                    for _ in range(num_requests)
                ]
            )
            flow_feasible = matcher.match(requests, index, current_time=0).feasible
            hall_feasible, witness = check_feasibility_hall(
                requests, index, uploads, c, current_time=0
            )
            assert flow_feasible == hall_feasible
            if not hall_feasible:
                assert witness is not None

    def test_hall_witness_is_a_real_violation(self):
        alloc = crafted_allocation(num_boxes=4, c=2, k=1)
        index = PossessionIndex(alloc, cache_window=20)
        uploads = alloc.population.uploads
        # Six requests for stripe 0 (held by box 0 only, capacity 2 stripes).
        requests = RequestSet(
            [StripeRequest(stripe_id=0, request_time=t, box_id=(t % 3) + 1) for t in range(6)]
        )
        feasible, witness = check_feasibility_hall(requests, index, uploads, 2, current_time=6)
        assert not feasible
        assert witness is not None
        assert len(witness) >= 3


class TestPossessionSubclassOverrides:
    def test_servers_for_override_is_honoured_by_both_solvers(self):
        """A subclass customizing only ``servers_for`` steers the fast path too."""

        class OddBoxesOnly(PossessionIndex):
            def servers_for(self, request, current_time):
                return {
                    b for b in super().servers_for(request, current_time) if b % 2 == 1
                }

        alloc = crafted_allocation(num_boxes=6, c=2, k=2)
        index = OddBoxesOnly(alloc, cache_window=20)
        requests = RequestSet(
            [StripeRequest(stripe_id=s, request_time=0, box_id=5) for s in range(4)]
        )
        slots = alloc.population.upload_slots(2)
        fast = ConnectionMatcher(slots).match(requests, index, current_time=0)
        oracle = ConnectionMatcher(slots, solver="dinic").match(requests, index, current_time=0)
        assert fast.matched == oracle.matched
        assert fast.feasible == oracle.feasible
        served = {int(b) for b in fast.assignment if b >= 0}
        assert all(b % 2 == 1 for b in served)

    def test_cache_servers_override_is_honoured_by_both_solvers(self):
        """The sourcing-only style override (cache help disabled) keeps parity."""

        class NoCacheHelp(PossessionIndex):
            def cache_servers(self, stripe_id, request_time, current_time):
                return set()

        alloc = crafted_allocation(num_boxes=8, c=2, k=2)
        index = NoCacheHelp(alloc, cache_window=20)
        index.record_download(stripe_id=0, box_id=7, time=0)
        requests = RequestSet(
            [StripeRequest(stripe_id=0, request_time=1, box_id=b) for b in range(2, 7)]
        )
        slots = alloc.population.upload_slots(2)
        fast = ConnectionMatcher(slots).match(requests, index, current_time=1)
        oracle = ConnectionMatcher(slots, solver="dinic").match(requests, index, current_time=1)
        assert not fast.feasible  # without cache help the crowd is infeasible
        assert fast.matched == oracle.matched
        served = {int(b) for b in fast.assignment if b >= 0}
        assert 7 not in served

    def test_cache_hook_with_external_state_reaches_the_fast_path(self):
        """An overridden ``_cache_boxes_array`` drawing on its own state (not
        the base swarm dict) is consulted for every request on both solvers."""

        class PinnedCache(PossessionIndex):
            def _cache_boxes_array(self, stripe_id, request_time, current_time):
                # Box 7 caches stripe 0 per out-of-band knowledge.
                if stripe_id == 0:
                    return np.array([7], dtype=np.int64)
                return super()._cache_boxes_array(stripe_id, request_time, current_time)

        alloc = crafted_allocation(num_boxes=8, c=2, k=2)
        index = PinnedCache(alloc, cache_window=20)
        # Five viewers of stripe 0: infeasible from the static holders alone,
        # feasible once the pinned cache server counts.
        requests = RequestSet(
            [StripeRequest(stripe_id=0, request_time=1, box_id=b) for b in range(2, 7)]
        )
        slots = alloc.population.upload_slots(2)
        fast = ConnectionMatcher(slots).match(requests, index, current_time=1)
        oracle = ConnectionMatcher(slots, solver="dinic").match(requests, index, current_time=1)
        assert fast.feasible and oracle.feasible
        assert fast.matched == oracle.matched == len(requests)


class TestSortKeyOverflowGuards:
    """Packed ``(stripe, time)`` sort keys must never wrap int64 silently."""

    def _index(self):
        return PossessionIndex(crafted_allocation(), cache_window=20)

    def test_cached_keys_built_at_the_stripe_boundary(self):
        index = self._index()
        index._log.append(_MAX_KEYABLE_STRIPE, 1, 3)
        keys = index._log.view_keys()
        assert keys is not None
        assert int(keys[-1]) == (_MAX_KEYABLE_STRIPE << 21) + 3

    def test_cached_keys_fall_back_just_past_the_stripe_boundary(self):
        index = self._index()
        index._log.append(_MAX_KEYABLE_STRIPE + 1, 1, 3)
        assert index._log.view_keys() is None

    def test_incremental_patch_drops_keys_past_the_boundary(self):
        index = self._index()
        index._log.append(0, 1, 0)
        assert index._log.view_keys() is not None
        # Appending an oversized stripe patches the existing view; the
        # cached keys must be dropped rather than wrapped.
        index._log.append(_MAX_KEYABLE_STRIPE + 1, 2, 1)
        assert index._log.view_keys() is None

    def test_cache_windows_correct_past_the_boundary(self):
        """The dynamic-key fallback still finds the cache server."""
        big = _MAX_KEYABLE_STRIPE + 1
        index = self._index()
        index._log.append(big, 4, 3)
        stripes = np.array([big], dtype=np.int64)
        times = np.array([5], dtype=np.int64)
        _, sorted_boxes, win_lo, win_hi = index._cache_windows(
            stripes, times, current_time=5
        )
        assert list(sorted_boxes[int(win_lo[0]): int(win_hi[0])]) == [4]

    def test_fast_path_skips_oversized_request_stripes(self):
        """Keyable log + oversized *request* stripe routes to the fallback."""
        big = _MAX_KEYABLE_STRIPE + 1
        index = self._index()
        index.record_download(stripe_id=0, box_id=4, time=3)
        assert index._log.view_keys() is not None
        stripes = np.array([0, big], dtype=np.int64)
        times = np.array([5, 5], dtype=np.int64)
        _, sorted_boxes, win_lo, win_hi = index._cache_windows(
            stripes, times, current_time=5
        )
        assert list(sorted_boxes[int(win_lo[0]): int(win_hi[0])]) == [4]
        assert int(win_hi[1]) - int(win_lo[1]) <= 0

    def test_dynamic_scale_overflow_raises_typed_error(self):
        index = self._index()
        index._log.append(2**62, 1, 3)
        stripes = np.array([2**62], dtype=np.int64)
        times = np.array([5], dtype=np.int64)
        with pytest.raises(SortKeyOverflowError, match="stripe"):
            index._cache_windows(stripes, times, current_time=5)
