"""Campaign execution: incremental runs, resume, kill-recovery, parallel parity."""

from __future__ import annotations

import os
import signal
import subprocess
import sys

import pytest

from repro.api.registry import register_component
from repro.orchestrate import get_campaign
from repro.orchestrate.runner import (
    CellExecutionError,
    execute_cell,
    execute_campaign_rows,
    run_campaign,
)
from repro.orchestrate.spec import CampaignSpec
from repro.orchestrate.store import ResultsStore

# A trivially cheap deterministic runner for machinery tests (serial only:
# worker processes would not see a test-module registration).
register_component(
    "experiment",
    "unit_echo",
    lambda params: [{"x": params["x"], "y": params["x"] * 2}],
    "test helper: echoes its parameter",
    overwrite=True,
)

ECHO = CampaignSpec(
    name="unit_echo_sweep",
    description="echo sweep",
    runner="unit_echo",
    grid={"x": (1, 2, 3, 4)},
)


@pytest.fixture
def store(tmp_path):
    return ResultsStore(tmp_path / "store")


class TestExecuteCell:
    def test_returns_rows(self):
        assert execute_cell(("unit_echo", {"x": 3})) == [{"x": 3, "y": 6}]

    def test_single_mapping_wrapped(self):
        register_component(
            "experiment", "unit_one", lambda p: {"v": 1}, overwrite=True
        )
        assert execute_cell(("unit_one", {})) == [{"v": 1}]

    def test_bad_return_type_rejected(self):
        register_component(
            "experiment", "unit_bad", lambda p: 42, overwrite=True
        )
        with pytest.raises(CellExecutionError, match="row dict"):
            execute_cell(("unit_bad", {}))


class TestRunCampaign:
    def test_first_run_executes_everything(self, store):
        report = run_campaign(ECHO, store, progress=lambda m: None)
        assert report.complete
        assert len(report.executed) == 4
        assert report.reused == []
        assert sorted(report.executed) == store.keys()
        assert store.read_campaign_index("unit_echo_sweep")["cells"] == report.cell_keys

    def test_second_run_is_a_no_op(self, store):
        run_campaign(ECHO, store)
        report = run_campaign(ECHO, store)
        assert report.complete
        assert report.executed == []
        assert len(report.reused) == 4

    def test_force_re_executes(self, store):
        run_campaign(ECHO, store)
        report = run_campaign(ECHO, store, force=True)
        assert len(report.executed) == 4

    def test_max_cells_leaves_campaign_incomplete_then_resume_finishes(self, store):
        first = run_campaign(ECHO, store, max_cells=2)
        assert not first.complete
        assert len(first.executed) == 2
        resumed = run_campaign(ECHO, store)
        assert resumed.complete
        # The two completed cells are reused, never re-executed.
        assert set(resumed.reused) == set(first.executed)
        assert set(resumed.executed) == set(first.cell_keys) - set(first.executed)

    def test_rows_follow_sweep_order(self, store):
        run_campaign(ECHO, store)
        from repro.orchestrate.report import campaign_rows

        assert [r["x"] for r in campaign_rows(ECHO, store)] == [1, 2, 3, 4]

    def test_execute_campaign_rows_matches_store_rows(self, store):
        run_campaign(ECHO, store)
        from repro.orchestrate.report import campaign_rows

        assert execute_campaign_rows(ECHO) == campaign_rows(ECHO, store)

    def test_params_mutating_runner_does_not_corrupt_cell_keys(self, store):
        """Runners get a copy: in-place normalization must not move the key."""
        register_component(
            "experiment",
            "unit_mutator",
            lambda p: [{"v": p.setdefault("pad", 1)}],
            overwrite=True,
        )
        spec = CampaignSpec(
            name="unit_mutator_sweep",
            description="",
            runner="unit_mutator",
            grid={"x": (1, 2)},
        )
        report = run_campaign(spec, store)
        assert set(report.executed) == set(spec.cell_keys())
        assert run_campaign(spec, store).executed == []  # still addressed


class TestCrossProcess:
    def run_cli(self, args, cwd=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath("src") + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, *args], capture_output=True, text=True, env=env, cwd=cwd
        )

    def test_parallel_and_serial_stores_are_byte_identical(self, tmp_path):
        campaign = get_campaign("threshold_formulas")
        serial = ResultsStore(tmp_path / "serial")
        parallel = ResultsStore(tmp_path / "parallel")
        run_campaign(campaign, serial, n_jobs=1)
        run_campaign(campaign, parallel, n_jobs=2)
        assert serial.keys() == parallel.keys()
        for key in serial.keys():
            assert (
                serial._object_path(key).read_bytes()
                == parallel._object_path(key).read_bytes()
            )

    def test_resume_after_sigkill_mid_campaign(self, tmp_path):
        """A campaign killed between cells resumes with zero re-execution."""
        store_path = tmp_path / "store"
        script = (
            "import os, signal, sys\n"
            "from repro.orchestrate import get_campaign\n"
            "from repro.orchestrate.runner import run_campaign\n"
            "from repro.orchestrate.store import ResultsStore\n"
            "count = 0\n"
            "def progress(message):\n"
            "    global count\n"
            "    count += 1\n"
            "    if count == 2:\n"
            "        os.kill(os.getpid(), signal.SIGKILL)\n"
            "run_campaign(get_campaign('threshold_formulas'),\n"
            f"             ResultsStore({str(store_path)!r}), progress=progress)\n"
        )
        out = self.run_cli(["-c", script])
        assert out.returncode == -signal.SIGKILL

        campaign = get_campaign("threshold_formulas")
        store = ResultsStore(store_path)
        survivors = store.keys()
        # Exactly the two cells persisted before the kill, none torn.
        assert len(survivors) == 2
        for key in survivors:
            assert store.get(key)["runner"] == "threshold_design"

        resumed = run_campaign(campaign, store)
        assert resumed.complete
        assert set(resumed.reused) == set(survivors)
        assert len(resumed.executed) == len(campaign.cell_keys()) - 2

        # A further resume is a pure no-op (the ISSUE acceptance property).
        again = run_campaign(campaign, store)
        assert again.executed == []
        assert len(again.reused) == len(campaign.cell_keys())
