"""Tests for the analysis layer: bound sweeps, Monte-Carlo, sweeps and reports."""

import numpy as np
import pytest

from repro.analysis.bounds import (
    catalog_bound_vs_n,
    catalog_bound_vs_upload,
    heterogeneous_design_table,
    obstruction_bound_vs_k,
    quality_tradeoff_table,
    replication_vs_upload,
    threshold_design_table,
)
from repro.analysis.montecarlo import (
    estimate_simulation_failure_probability,
    estimate_static_obstruction_probability,
    find_max_feasible_catalog,
)
from repro.analysis.report import format_value, render_markdown_table, render_table
from repro.analysis.sweep import ParameterSweep, SweepResult, cartesian_grid
from repro.core.parameters import homogeneous_population
from repro.core.video import Catalog
from repro.workloads.flashcrowd import FlashCrowdWorkload
from repro.workloads.popularity import ZipfDemandWorkload


class TestBoundSweeps:
    def test_threshold_design_table_rows(self):
        rows = threshold_design_table(n=1000, d=4.0, mu=1.3, u_values=[1.5, 2.0, 3.0])
        assert len(rows) == 3
        assert all(row["k"] > 0 for row in rows)
        assert rows[0]["k"] > rows[-1]["k"]

    def test_catalog_bound_vs_upload_monotone(self):
        data = catalog_bound_vs_upload([1.3, 1.6, 2.0, 3.0], n=10_000, d=4.0, mu=1.3)
        assert np.all(np.diff(data["catalog"]) >= 0)
        assert np.all(np.diff(data["asymptotic"]) > 0)

    def test_catalog_bound_vs_upload_rejects_sub_threshold(self):
        with pytest.raises(ValueError):
            catalog_bound_vs_upload([0.9, 1.5], n=100, d=4.0, mu=1.3)

    def test_catalog_bound_vs_n_linear(self):
        data = catalog_bound_vs_n([1000, 2000, 4000], u=2.0, d=4.0, mu=1.3)
        # k is n-independent, so catalog per box is (nearly) constant.
        assert np.all(data["k"] == data["k"][0])
        per_box = data["catalog_per_box"]
        assert per_box[0] == pytest.approx(per_box[-1], rel=0.05)

    def test_replication_vs_upload_decreasing(self):
        data = replication_vs_upload([1.3, 1.6, 2.0, 3.0], d=4.0, mu=1.3)
        assert np.all(np.diff(data["k"]) <= 0)
        assert np.all(data["nu"] > 0)

    def test_quality_tradeoff_table(self):
        rows = quality_tradeoff_table(
            bitrates=[0.4, 0.8, 1.0, 1.2, 2.0], raw_upload=1.0, n=1000, d=4.0, mu=1.3
        )
        assert len(rows) == 5
        # Low bitrate → u > 1 → scalable; bitrate ≥ raw upload → not scalable.
        assert rows[0]["scalable"]
        assert not rows[2]["scalable"]
        assert not rows[4]["scalable"]
        assert rows[0]["catalog"] > rows[1]["catalog"]

    def test_obstruction_bound_vs_k_decreasing(self):
        rows = obstruction_bound_vs_k(
            k_values=[100, 250, 400], n=100, c=5, u=2.0, d=4.0, mu=1.3
        )
        bounds = [row["paper_bound"] for row in rows]
        assert bounds == sorted(bounds, reverse=True)

    def test_obstruction_bound_vs_k_rejects_bad_c(self):
        with pytest.raises(ValueError):
            obstruction_bound_vs_k([10], n=100, c=2, u=1.2, d=4.0, mu=1.5)

    def test_heterogeneous_design_table(self):
        rows = heterogeneous_design_table(n=1000, d=4.0, mu=1.1, u_star_values=[1.5, 2.0])
        assert len(rows) == 2
        assert all(row["regime"] == "heterogeneous" for row in rows)


class TestMonteCarlo:
    def test_static_obstruction_small_k_fails_more_often(self):
        result_k1 = estimate_static_obstruction_probability(
            n=24, u=1.5, d=3.0, c=3, k=1, num_cold_videos=[8], trials=15, random_state=0
        )
        result_k4 = estimate_static_obstruction_probability(
            n=24, u=1.5, d=3.0, c=3, k=4, num_cold_videos=[8], trials=15, random_state=0
        )
        assert result_k1.failure_probability >= result_k4.failure_probability
        assert 0.0 <= result_k4.failure_probability <= 1.0
        assert result_k4.trials == 15

    def test_static_obstruction_validation(self):
        with pytest.raises(ValueError):
            estimate_static_obstruction_probability(
                n=24, u=1.5, d=3.0, c=3, k=2, num_cold_videos=[999], trials=2
            )
        with pytest.raises(ValueError):
            estimate_static_obstruction_probability(
                n=10, u=1.5, d=1.0, c=3, k=100, num_cold_videos=[1], trials=2
            )

    def test_simulation_failure_probability_zero_for_well_provisioned(self):
        population = homogeneous_population(30, u=2.0, d=4.0)
        catalog = Catalog(num_videos=15, num_stripes=4, duration=25)
        result = estimate_simulation_failure_probability(
            population=population,
            catalog=catalog,
            k=4,
            mu=1.5,
            workload_factory=lambda rng: FlashCrowdWorkload(mu=1.5, random_state=rng),
            num_rounds=6,
            trials=3,
            random_state=1,
        )
        assert result.failure_probability == 0.0
        assert result.failures == 0

    def test_simulation_failure_probability_one_below_threshold(self):
        population = homogeneous_population(24, u=0.4, d=2.0)
        catalog = Catalog(num_videos=16, num_stripes=3, duration=25)
        result = estimate_simulation_failure_probability(
            population=population,
            catalog=catalog,
            k=3,
            mu=2.0,
            workload_factory=lambda rng: ZipfDemandWorkload(
                arrival_rate=10.0, random_state=rng
            ),
            num_rounds=8,
            trials=3,
            random_state=2,
        )
        assert result.failure_probability == 1.0

    def test_find_max_feasible_catalog(self):
        summary = find_max_feasible_catalog(
            n=24,
            u=1.5,
            d=2.0,
            c=3,
            k=3,
            mu=1.5,
            workload_factory=lambda rng: FlashCrowdWorkload(mu=1.5, random_state=rng),
            num_rounds=5,
            trials_per_point=2,
            random_state=3,
            m_min=2,
        )
        assert 0 < summary["max_feasible_catalog"] <= summary["storage_cap"]
        assert summary["failure_rate"] == 0.0

    def test_find_max_feasible_catalog_validation(self):
        with pytest.raises(ValueError):
            find_max_feasible_catalog(
                n=10, u=1.5, d=1.0, c=3, k=100, mu=1.5,
                workload_factory=lambda rng: FlashCrowdWorkload(mu=1.5, random_state=rng),
                num_rounds=3,
            )


class TestSweepHarness:
    def test_cartesian_grid(self):
        grid = cartesian_grid(a=[1, 2], b=["x"])
        assert grid == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]
        assert cartesian_grid() == [{}]
        with pytest.raises(ValueError):
            cartesian_grid(a=[])

    def test_parameter_sweep_with_dict_result(self):
        sweep = ParameterSweep(lambda a, b: {"sum": a + b})
        result = sweep.run(cartesian_grid(a=[1, 2], b=[10]))
        assert len(result) == 2
        assert result.rows[0]["sum"] == 11
        assert result.column("sum") == [11, 12]
        assert set(result.columns()) == {"a", "b", "sum"}

    def test_parameter_sweep_with_list_result(self):
        sweep = ParameterSweep(lambda a: [{"v": a}, {"v": a * 2}])
        result = sweep.run([{"a": 3}])
        assert [row["v"] for row in result] == [3, 6]

    def test_parameter_sweep_invalid_return(self):
        sweep = ParameterSweep(lambda a: 42)
        with pytest.raises(TypeError):
            sweep.run([{"a": 1}])

    def test_sweep_result_filter_and_sort(self):
        result = SweepResult(rows=[{"x": 2}, {"x": 1}, {"x": 3}])
        assert [r["x"] for r in result.sort_by("x")] == [1, 2, 3]
        assert len(result.filter(lambda r: r["x"] > 1)) == 2

    def test_progress_callback(self):
        calls = []
        sweep = ParameterSweep(lambda a: {"v": a})
        sweep.run([{"a": 1}, {"a": 2}], progress=lambda i, p: calls.append((i, p["a"])))
        assert calls == [(0, 1), (1, 2)]


class TestReport:
    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(0.000123) == "0.000123"
        assert format_value(float("nan")) == "nan"
        assert format_value(12) == "12"
        assert format_value(0.0) == "0"

    def test_render_table(self):
        text = render_table([{"a": 1, "b": 2.5}, {"a": 3}], title="T")
        assert "T" in text
        assert "a" in text and "b" in text
        assert "2.5" in text

    def test_render_table_empty(self):
        assert "empty" in render_table([], title=None) or render_table([]) == "(empty table)"

    def test_render_markdown_table(self):
        text = render_markdown_table([{"a": 1}], title="My table")
        assert text.startswith("**My table**")
        assert "| a |" in text
        assert "| --- |" in text

    def test_explicit_column_selection(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]
