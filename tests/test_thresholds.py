"""Tests for repro.core.thresholds (Theorem 1 and Theorem 2 formulas)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import thresholds as th


class TestStripeChoices:
    def test_minimum_stripes_satisfies_hypothesis(self):
        c = th.minimum_stripes_homogeneous(u=1.5, mu=1.2)
        assert c > (2 * 1.2**2 - 1) / 0.5
        assert c - 1 <= (2 * 1.2**2 - 1) / 0.5

    def test_recommended_is_at_least_minimum(self):
        for u in (1.1, 1.5, 2.0, 3.0):
            for mu in (1.0, 1.3, 2.0):
                assert th.recommended_stripes_homogeneous(u, mu) >= th.minimum_stripes_homogeneous(
                    u, mu
                ) - 1

    def test_stripes_grow_as_u_approaches_one(self):
        assert th.recommended_stripes_homogeneous(1.05, 1.5) > th.recommended_stripes_homogeneous(
            2.0, 1.5
        )

    def test_u_must_exceed_one(self):
        with pytest.raises(ValueError):
            th.recommended_stripes_homogeneous(1.0, 1.5)
        with pytest.raises(ValueError):
            th.minimum_stripes_homogeneous(0.9, 1.5)

    @given(u=st.floats(1.01, 10, allow_nan=False), mu=st.floats(1.0, 2.5, allow_nan=False))
    def test_nu_positive_at_recommended_stripes(self, u, mu):
        c = th.recommended_stripes_homogeneous(u, mu)
        assert th.nu_homogeneous(u, c, mu) > 0


class TestEffectiveUploadAndDPrime:
    def test_effective_upload(self):
        assert th.effective_upload(1.3, 4) == pytest.approx(1.25)
        assert th.effective_upload(2.0, 5) == pytest.approx(2.0)

    def test_d_prime_is_max(self):
        assert th.d_prime(5.0, 2.0) == 5.0
        assert th.d_prime(1.0, 4.0) == 4.0
        assert th.d_prime(1.0, 1.0) == pytest.approx(math.e)


class TestReplicationHomogeneous:
    def test_matches_formula(self):
        u, d, mu = 2.0, 4.0, 1.3
        c = th.recommended_stripes_homogeneous(u, mu)
        k = th.replication_homogeneous(u, d, c, mu)
        nu = th.nu_homogeneous(u, c, mu)
        u_prime = th.effective_upload(u, c)
        expected = math.ceil(5 / nu * math.log(th.d_prime(d, u)) / math.log(u_prime))
        assert k == expected

    def test_raises_when_hypothesis_violated(self):
        # c too small: ν ≤ 0.
        with pytest.raises(ValueError):
            th.replication_homogeneous(1.2, 4.0, 2, 1.5)

    def test_raises_when_effective_upload_at_most_one(self):
        # u=1.05, c=1 → u' = 1 and log u' = 0 — but ν would also be ≤ 0; use
        # a case where ν > 0 but ⌊uc⌋/c = 1: impossible when ν>0, so check
        # the ν error path directly with u'≤1 parameters.
        with pytest.raises(ValueError):
            th.replication_homogeneous(1.01, 4.0, 1, 1.0)

    def test_replication_decreases_with_upload(self):
        d, mu = 4.0, 1.3
        ks = []
        for u in (1.3, 1.6, 2.0, 3.0):
            c = th.recommended_stripes_homogeneous(u, mu)
            ks.append(th.replication_homogeneous(u, d, c, mu))
        assert ks == sorted(ks, reverse=True)

    def test_replication_increases_with_mu(self):
        u, d = 2.0, 4.0
        k_small = th.replication_homogeneous(
            u, d, th.recommended_stripes_homogeneous(u, 1.1), 1.1
        )
        k_large = th.replication_homogeneous(
            u, d, th.recommended_stripes_homogeneous(u, 2.0), 2.0
        )
        assert k_large > k_small


class TestCatalogBounds:
    def test_catalog_size_uses_storage_over_k(self):
        m = th.catalog_size_homogeneous(n=10_000, u=2.0, d=4.0, mu=1.3)
        c = th.recommended_stripes_homogeneous(2.0, 1.3)
        k = th.replication_homogeneous(2.0, 4.0, c, 1.3)
        assert m == int(4.0 * 10_000 // k)

    def test_catalog_linear_in_n(self):
        m1 = th.catalog_size_homogeneous(n=10_000, u=2.0, d=4.0, mu=1.3)
        m2 = th.catalog_size_homogeneous(n=20_000, u=2.0, d=4.0, mu=1.3)
        assert m2 == pytest.approx(2 * m1, rel=0.01)

    def test_asymptotic_bound_linear_in_n(self):
        b1 = th.catalog_lower_bound_theorem1(n=1000, u=2.0, d=4.0, mu=1.3)
        b2 = th.catalog_lower_bound_theorem1(n=2000, u=2.0, d=4.0, mu=1.3)
        assert b2 == pytest.approx(2 * b1)

    def test_asymptotic_bound_vanishes_as_u_tends_to_one(self):
        b_near = th.catalog_lower_bound_theorem1(n=1000, u=1.01, d=4.0, mu=1.3)
        b_far = th.catalog_lower_bound_theorem1(n=1000, u=3.0, d=4.0, mu=1.3)
        assert b_near < b_far / 100

    def test_asymptotic_bound_decreases_with_mu(self):
        b1 = th.catalog_lower_bound_theorem1(n=1000, u=2.0, d=4.0, mu=1.1)
        b2 = th.catalog_lower_bound_theorem1(n=1000, u=2.0, d=4.0, mu=2.0)
        assert b2 < b1

    def test_cubic_behaviour_near_threshold(self):
        # (u-1)^2 log((u+1)/2) ~ (u-1)^3 / 2 as u → 1: ratio of bounds at
        # u = 1+2ε and u = 1+ε should approach 8.
        n, d, mu = 1000, 4.0, 1.2
        eps = 1e-3
        b1 = th.catalog_lower_bound_theorem1(n, 1 + eps, d, mu)
        b2 = th.catalog_lower_bound_theorem1(n, 1 + 2 * eps, d, mu)
        assert b2 / b1 == pytest.approx(8.0, rel=0.05)


class TestDesignHomogeneous:
    def test_design_consistency(self):
        design = th.design_homogeneous(n=500, u=2.0, d=4.0, mu=1.3)
        assert design.regime == "homogeneous"
        assert design.c == th.recommended_stripes_homogeneous(2.0, 1.3)
        assert design.k == th.replication_homogeneous(2.0, 4.0, design.c, 1.3)
        assert design.catalog_size == int(4.0 * 500 // design.k)
        assert design.nu > 0
        assert design.u_prime > 1
        desc = design.describe()
        assert desc["k"] == design.k

    def test_design_with_explicit_c(self):
        design = th.design_homogeneous(n=500, u=2.0, d=4.0, mu=1.3, c=20)
        assert design.c == 20


class TestTheorem2:
    def test_recommended_stripes(self):
        c = th.recommended_stripes_heterogeneous(u_star=1.5, mu=1.2)
        assert c == math.ceil(10 * 1.2**4 / 0.5)

    def test_minimum_stripes_hypothesis(self):
        c = th.minimum_stripes_heterogeneous(u_star=1.5, mu=1.2)
        assert c > 4 * 1.2**4 / 0.5

    def test_nu_and_uprime_positive(self):
        c = th.recommended_stripes_heterogeneous(1.5, 1.2)
        assert th.nu_heterogeneous(c, 1.2) > 0
        assert th.u_prime_heterogeneous(c, 1.2) > 1

    def test_replication_heterogeneous_formula(self):
        u_star, d, mu = 1.5, 4.0, 1.2
        c = th.recommended_stripes_heterogeneous(u_star, mu)
        k = th.replication_heterogeneous(u_star, d, c, mu)
        nu = th.nu_heterogeneous(c, mu)
        expected = math.ceil(
            5 / nu * math.log(th.d_prime(d, u_star)) / math.log(th.u_prime_heterogeneous(c, mu))
        )
        assert k == expected

    def test_catalog_bound_theorem2_linear_in_n(self):
        b1 = th.catalog_lower_bound_theorem2(n=1000, u_star=1.5, d=4.0, mu=1.2)
        b2 = th.catalog_lower_bound_theorem2(n=3000, u_star=1.5, d=4.0, mu=1.2)
        assert b2 == pytest.approx(3 * b1)

    def test_design_heterogeneous(self):
        design = th.design_heterogeneous(n=1000, u_star=1.5, d=4.0, mu=1.2)
        assert design.regime == "heterogeneous"
        assert design.c == th.recommended_stripes_heterogeneous(1.5, 1.2)
        assert design.catalog_size >= 0

    def test_theorem2_bound_degrades_faster_in_mu(self):
        # The heterogeneous guarantee pays µ⁴ instead of µ²: doubling µ
        # must shrink the Theorem 2 bound by a larger factor.
        def ratio(bound_fn, **kwargs):
            return bound_fn(n=1000, d=4.0, mu=2.0, **kwargs) / bound_fn(
                n=1000, d=4.0, mu=1.0, **kwargs
            )

        drop_hom = ratio(th.catalog_lower_bound_theorem1, u=1.5)
        drop_het = ratio(th.catalog_lower_bound_theorem2, u_star=1.5)
        assert drop_het < drop_hom


class TestScalabilityCondition:
    def test_homogeneous_reduces_to_u_gt_1(self):
        assert th.scalability_threshold_satisfied(1.01, 0.0, 100)
        assert not th.scalability_threshold_satisfied(1.0, 0.0, 100)

    def test_deficit_raises_threshold(self):
        assert not th.scalability_threshold_satisfied(1.2, 30.0, 100)
        assert th.scalability_threshold_satisfied(1.2, 10.0, 100)

    def test_negative_deficit_rejected(self):
        with pytest.raises(ValueError):
            th.scalability_threshold_satisfied(1.2, -1.0, 100)
