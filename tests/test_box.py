"""Tests for repro.core.box (storage and playback cache)."""

import pytest

from repro.core.box import Box, PlaybackCache


class TestPlaybackCache:
    def test_can_serve_earlier_requester_serves_later_one(self):
        cache = PlaybackCache(window=10)
        cache.record_request(stripe_id=3, time=2)
        # A request made later (time 5) can be served while within window.
        assert cache.can_serve(3, request_time=5, current_time=6)

    def test_cannot_serve_earlier_request(self):
        cache = PlaybackCache(window=10)
        cache.record_request(stripe_id=3, time=5)
        # A request made at the same time or before is NOT served (t_j < t_i).
        assert not cache.can_serve(3, request_time=5, current_time=6)
        assert not cache.can_serve(3, request_time=4, current_time=6)

    def test_window_expiry(self):
        cache = PlaybackCache(window=5)
        cache.record_request(stripe_id=1, time=0)
        # At current_time=5 the horizon is 0, entry still valid.
        assert cache.can_serve(1, request_time=3, current_time=5)
        # At current_time=6 the horizon is 1 > 0: entry too old.
        assert not cache.can_serve(1, request_time=3, current_time=6)

    def test_evict_older_than(self):
        cache = PlaybackCache(window=5)
        cache.record_request(1, time=0)
        cache.record_request(2, time=4)
        cache.evict_older_than(current_time=7)
        assert 1 not in cache
        assert 2 in cache
        assert len(cache) == 1

    def test_evict_keeps_recent_of_multiple_times(self):
        cache = PlaybackCache(window=5)
        cache.record_request(1, time=0)
        cache.record_request(1, time=6)
        cache.evict_older_than(current_time=8)
        assert 1 in cache
        assert cache.earliest_request(1) == 6

    def test_unknown_stripe(self):
        cache = PlaybackCache(window=5)
        assert not cache.can_serve(42, request_time=1, current_time=2)
        assert cache.earliest_request(42) is None

    def test_cached_stripes_and_clear(self):
        cache = PlaybackCache(window=5)
        cache.record_request(1, 0)
        cache.record_request(2, 1)
        assert cache.cached_stripes() == {1, 2}
        cache.clear()
        assert len(cache) == 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            PlaybackCache(window=0)


class TestBox:
    def make_box(self, upload=2.0, storage=2.0, c=4, window=20):
        return Box(box_id=0, upload=upload, storage=storage, num_stripes=c, cache_window=window)

    def test_capacities_in_stripe_units(self):
        box = self.make_box(upload=1.3, storage=2.5, c=4)
        assert box.upload_slots == 5
        assert box.effective_upload == pytest.approx(1.25)
        assert box.storage_slots == 10

    def test_store_and_query(self):
        box = self.make_box()
        box.store_stripe(3)
        assert box.stores(3)
        assert not box.stores(4)
        assert box.free_storage_slots == box.storage_slots - 1

    def test_storage_overflow_raises(self):
        box = self.make_box(storage=0.5, c=4)  # 2 slots
        box.store_many([1, 2])
        with pytest.raises(ValueError):
            box.store_stripe(3)

    def test_restoring_same_stripe_is_idempotent(self):
        box = self.make_box(storage=0.5, c=4)
        box.store_many([1, 2])
        box.store_stripe(1)  # already stored: no overflow
        assert box.free_storage_slots == 0

    def test_possession_from_storage(self):
        box = self.make_box()
        box.store_stripe(7)
        assert box.possesses(7, request_time=5, current_time=5)

    def test_possession_from_relay_cache(self):
        box = self.make_box()
        box.relay_cached_stripes.add(9)
        assert box.possesses(9, request_time=5, current_time=5)

    def test_possession_from_playback_cache(self):
        box = self.make_box(window=10)
        box.record_playback_request(4, time=2)
        assert box.possesses(4, request_time=5, current_time=6)
        assert not box.possesses(4, request_time=2, current_time=6)

    def test_advance_evicts_cache(self):
        box = self.make_box(window=5)
        box.record_playback_request(4, time=0)
        box.advance_to(10)
        assert not box.possesses(4, request_time=8, current_time=10)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Box(box_id=-1, upload=1.0, storage=1.0, num_stripes=4)
        with pytest.raises(ValueError):
            Box(box_id=0, upload=-1.0, storage=1.0, num_stripes=4)
        with pytest.raises(ValueError):
            Box(box_id=0, upload=1.0, storage=1.0, num_stripes=0)
