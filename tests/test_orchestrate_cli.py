"""The ``python -m repro.orchestrate`` CLI and the report generator."""

from __future__ import annotations

import pytest

from repro.orchestrate import get_campaign
from repro.orchestrate.cli import main
from repro.orchestrate.report import (
    diff_reports,
    generate_reports,
    render_campaign_report,
    render_claim_map,
)
from repro.orchestrate.runner import run_campaign
from repro.orchestrate.store import ResultsStore

CAMPAIGN = "threshold_formulas"  # analytic: instant cells


@pytest.fixture
def store_path(tmp_path):
    return str(tmp_path / "store")


class TestCli:
    def test_list(self, store_path, capsys):
        assert main(["list", "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert CAMPAIGN in out
        assert "baseline_comparison" in out

    def test_run_then_resume_expect_complete(self, store_path, capsys):
        assert main(["run", CAMPAIGN, "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert "6 executed, 0 reused (complete)" in out
        assert (
            main(["resume", CAMPAIGN, "--store", store_path, "--expect-complete"]) == 0
        )
        out = capsys.readouterr().out
        assert "0 executed, 6 reused (complete)" in out

    def test_resume_expect_complete_fails_on_cold_store(self, store_path, capsys):
        code = main(["resume", CAMPAIGN, "--store", store_path, "--expect-complete"])
        assert code == 1
        assert "had to be executed" in capsys.readouterr().err

    def test_run_max_cells_reports_incomplete(self, store_path, capsys):
        code = main(["run", CAMPAIGN, "--store", store_path, "--max-cells", "2"])
        assert code == 1
        assert "INCOMPLETE" in capsys.readouterr().out

    def test_unknown_campaign_is_a_clean_error(self, store_path, capsys):
        assert main(["run", "no_such_campaign", "--store", store_path]) == 2
        assert "unknown campaign" in capsys.readouterr().err

    def test_run_without_names_is_an_error(self, store_path, capsys):
        assert main(["run", "--store", store_path]) == 2
        assert "no campaigns named" in capsys.readouterr().err

    def test_subset_diff_does_not_false_stale_the_full_claim_map(
        self, store_path, tmp_path, capsys
    ):
        """`diff NAME` compares NAME's page but the registry-wide index."""
        out_dir = str(tmp_path / "docs")
        assert main(["run", CAMPAIGN, "--store", store_path]) == 0
        assert main(["report", "--store", store_path, "--out", out_dir]) == 0
        capsys.readouterr()
        assert main(["diff", CAMPAIGN, "--store", store_path, "--out", out_dir]) == 0

    def test_report_and_diff(self, store_path, tmp_path, capsys):
        out_dir = str(tmp_path / "docs")
        assert main(["run", CAMPAIGN, "--store", store_path]) == 0
        assert (
            main(["report", CAMPAIGN, "--store", store_path, "--out", out_dir]) == 0
        )
        capsys.readouterr()
        assert (
            main(["diff", CAMPAIGN, "--store", store_path, "--out", out_dir]) == 0
        )
        # Stale a file; diff must fail and show it.
        (tmp_path / "docs" / f"{CAMPAIGN}.md").write_text("stale", encoding="utf-8")
        capsys.readouterr()
        assert (
            main(["diff", CAMPAIGN, "--store", store_path, "--out", out_dir]) == 1
        )
        captured = capsys.readouterr()
        assert "stale" in captured.err


class TestReport:
    def test_report_is_byte_stable(self, store_path, tmp_path):
        campaign = get_campaign(CAMPAIGN)
        store = ResultsStore(store_path)
        run_campaign(campaign, store)
        first = render_campaign_report(campaign, store)
        assert first == render_campaign_report(campaign, store)
        out_dir = tmp_path / "docs"
        generate_reports([campaign], store, out_dir)
        assert (out_dir / f"{CAMPAIGN}.md").read_text(encoding="utf-8") == first
        assert diff_reports([campaign], store, out_dir) == []

    def test_incomplete_campaign_marks_missing_cells(self, store_path):
        campaign = get_campaign(CAMPAIGN)
        store = ResultsStore(store_path)
        run_campaign(campaign, store, max_cells=2)
        text = render_campaign_report(campaign, store)
        assert "INCOMPLETE" in text
        assert "MISSING" in text

    def test_claim_map_lists_campaign_and_keys(self, store_path):
        campaign = get_campaign(CAMPAIGN)
        store = ResultsStore(store_path)
        run_campaign(campaign, store)
        text = render_claim_map([campaign], store)
        assert f"[`{CAMPAIGN}`]({CAMPAIGN}.md)" in text
        assert campaign.cell_keys()[0][:8] in text
        assert "6/6" in text

    def test_diff_detects_missing_file(self, store_path, tmp_path):
        campaign = get_campaign(CAMPAIGN)
        store = ResultsStore(store_path)
        run_campaign(campaign, store)
        diffs = diff_reports([campaign], store, tmp_path / "empty")
        assert len(diffs) == 2  # campaign page + claim map
