"""Deterministic replay and CLI tests.

The acceptance bar: ``python -m repro.scenarios run <name> --seed S``
replays bit-identically (same metric digest) across two invocations for
every registered scenario.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.scenarios.cli import main
from repro.scenarios.registry import get_scenario, scenario_names
from repro.scenarios.replay import run_scenario, write_golden

REPO_SRC = str(Path(__file__).resolve().parents[1] / "src")


# The scale tiers (10k-500k boxes) replay deterministically too, but at
# full horizon they belong to tests/test_scale_stress.py — the parametrized
# sweeps below stick to the fast regression scenarios.
REGRESSION_SCENARIOS = [
    name for name in scenario_names() if not name.startswith("scale_tier")
]


class TestReplayDeterminism:
    @pytest.mark.parametrize("name", REGRESSION_SCENARIOS)
    def test_full_horizon_replay_is_bit_identical(self, name):
        first = run_scenario(name, seed=97)
        second = run_scenario(name, seed=97)
        assert first.digest == second.digest
        assert first.round_records == second.round_records
        assert first.summary == second.summary

    def test_different_seeds_change_the_digest(self):
        assert (
            run_scenario("steady_state", seed=1).digest
            != run_scenario("steady_state", seed=2).digest
        )

    def test_solver_choice_is_part_of_the_digest(self):
        spec = get_scenario("steady_state")
        hk = run_scenario(spec, seed=3, num_rounds=5)
        dinic = run_scenario(spec.with_overrides(solver="dinic"), seed=3, num_rounds=5)
        # Identical metric trajectories in a feasible regime, but the digest
        # pins the solver so traces from different kernels never collide.
        assert hk.digest != dinic.digest
        assert [r["matched"] for r in hk.round_records] == [
            r["matched"] for r in dinic.round_records
        ]

    def test_round_records_are_plain_ints(self):
        run = run_scenario("steady_state", seed=5, num_rounds=4)
        for record in run.round_records:
            for key, value in record.items():
                assert type(value) is int, (key, type(value))

    def test_churn_covers_rounds_beyond_the_spec_horizon(self):
        from repro.scenarios.build import build_scenario

        spec = get_scenario("churn_storm")
        long = build_scenario(spec, seed=4, min_horizon=2 * spec.horizon)
        assert any(o.start >= spec.horizon for o in long.churn.outages)
        # The churn draw is prefix-stable: extending the horizon never
        # rewrites the earlier rounds, so short-run digests are unchanged.
        short = build_scenario(spec, seed=4)
        assert [
            o for o in long.churn.outages if o.start < spec.horizon
        ] == list(short.churn.outages)

    def test_extended_churn_run_replays_bit_identically(self):
        rounds = 40  # beyond churn_storm's 24-round spec horizon
        first = run_scenario("churn_storm", seed=9, num_rounds=rounds)
        second = run_scenario("churn_storm", seed=9, num_rounds=rounds)
        assert first.digest == second.digest


class TestCli:
    def _run_cli(self, capsys, *argv) -> str:
        code = main(list(argv))
        out = capsys.readouterr().out
        assert code == 0, out
        return out

    def _digest_of(self, output: str) -> str:
        for line in output.splitlines():
            if line.startswith("digest"):
                return line.split(":", 1)[1].strip()
        raise AssertionError(f"no digest line in {output!r}")

    def test_list_shows_every_scenario(self, capsys):
        out = self._run_cli(capsys, "list")
        for name in scenario_names():
            assert name in out

    def test_run_twice_prints_identical_digest(self, capsys):
        first = self._digest_of(
            self._run_cli(capsys, "run", "flashcrowd_spike", "--seed", "21")
        )
        second = self._digest_of(
            self._run_cli(capsys, "run", "flashcrowd_spike", "--seed", "21")
        )
        assert first == second

    def test_run_json_output_roundtrips(self, capsys):
        out = self._run_cli(
            capsys, "run", "steady_state", "--seed", "4", "--rounds", "3", "--json"
        )
        payload = json.loads(out)
        assert payload["scenario"] == "steady_state"
        assert payload["rounds"] == 3
        assert len(payload["round_records"]) == 3

    def test_write_golden_then_verify(self, capsys, tmp_path):
        golden = tmp_path / "g.json"
        self._run_cli(
            capsys, "run", "steady_state", "--seed", "8", "--rounds", "5",
            "--write-golden", str(golden),
        )
        out = self._run_cli(capsys, "verify", str(golden))
        assert out.startswith("OK:")

    def test_verify_accepts_goldens_recorded_with_overrides(self, capsys, tmp_path):
        golden = tmp_path / "dinic.json"
        self._run_cli(
            capsys, "run", "steady_state", "--seed", "8", "--rounds", "5",
            "--solver", "dinic", "--cold-start", "--write-golden", str(golden),
        )
        out = self._run_cli(capsys, "verify", str(golden))
        assert out.startswith("OK:")

    def test_verify_fails_on_tampered_golden(self, capsys, tmp_path):
        golden = tmp_path / "g.json"
        run = run_scenario("steady_state", seed=8, num_rounds=5)
        write_golden(run, golden)
        data = json.loads(golden.read_text())
        data["round_records"][0]["matched"] += 1
        golden.write_text(json.dumps(data))
        assert main(["verify", str(golden)]) == 1
        assert "DIVERGED" in capsys.readouterr().out

    def test_oracle_command(self, capsys):
        out = self._run_cli(
            capsys, "oracle", "flashcrowd_spike", "--seed", "6", "--rounds", "6"
        )
        assert "OK" in out

    def test_smoke_command_covers_all_scenarios(self, capsys):
        out = self._run_cli(capsys, "smoke", "--rounds", "3")
        for name in scenario_names():
            assert name in out

    def test_session_command_checkpoint_and_batch_parity(self, capsys):
        out = self._run_cli(
            capsys,
            "session", "steady_state", "--seed", "5", "--rounds", "6",
            "--checkpoint-at", "3",
        )
        assert "checkpoint/restore parity: OK" in out
        assert "batch parity: OK" in out
        assert "digest" in out

    def test_session_command_json_output_is_pure_json(self, capsys):
        import json as json_module

        code = main(
            ["session", "flashcrowd_spike", "--seed", "5", "--rounds", "4", "--json"]
        )
        captured = capsys.readouterr()
        assert code == 0, captured.out
        # stdout parses as-is; parity status lines go to stderr.
        reports = json_module.loads(captured.out)
        assert len(reports) == 4
        assert all("matched" in record for record in reports)
        assert "batch parity: OK" in captured.err

    def test_session_command_solver_override(self, capsys):
        out = self._run_cli(
            capsys,
            "session", "steady_state", "--seed", "5", "--rounds", "4",
            "--solver", "dinic",
        )
        assert "batch parity: OK" in out

    def test_session_command_rejects_bad_checkpoint(self, capsys):
        code = main(
            ["session", "steady_state", "--rounds", "4", "--checkpoint-at", "9"]
        )
        assert code == 2

    def test_session_command_rejects_non_positive_rounds(self, capsys):
        assert main(["session", "steady_state", "--rounds", "0"]) == 2
        assert main(["session", "steady_state", "--rounds", "-3"]) == 2
        err = capsys.readouterr().err
        assert "--rounds must be positive" in err

    def test_cold_start_and_solver_overrides(self, capsys):
        warm = self._digest_of(
            self._run_cli(capsys, "run", "steady_state", "--seed", "9", "--rounds", "4")
        )
        cold = self._digest_of(
            self._run_cli(
                capsys, "run", "steady_state", "--seed", "9", "--rounds", "4",
                "--cold-start",
            )
        )
        # warm_start is part of the digest payload.
        assert warm != cold


class TestModuleInvocation:
    def test_python_dash_m_replays_bit_identically(self):
        """The literal acceptance criterion, through the real entry point."""
        cmd = [
            sys.executable, "-m", "repro.scenarios",
            "run", "steady_state", "--seed", "123", "--rounds", "4",
        ]
        outputs = []
        for _ in range(2):
            proc = subprocess.run(
                cmd, capture_output=True, text=True,
                env={"PYTHONPATH": REPO_SRC, "PATH": "/usr/bin:/bin"},
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        assert "digest" in outputs[0]
