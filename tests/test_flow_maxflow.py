"""Tests for the three max-flow solvers (cross-checked against each other
and against networkx on random instances)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.flow.dinic import dinic_max_flow
from repro.flow.edmonds_karp import edmonds_karp_max_flow
from repro.flow.network import FlowNetwork
from repro.flow.push_relabel import push_relabel_max_flow

SOLVERS = {
    "edmonds_karp": edmonds_karp_max_flow,
    "dinic": dinic_max_flow,
    "push_relabel": push_relabel_max_flow,
}


def build_simple_network():
    """The classic 4-node example with max flow 23."""
    net = FlowNetwork(6)
    s, a, b, c, d, t = range(6)
    net.add_edge(s, a, 16)
    net.add_edge(s, b, 13)
    net.add_edge(a, b, 10)
    net.add_edge(b, a, 4)
    net.add_edge(a, c, 12)
    net.add_edge(c, b, 9)
    net.add_edge(b, d, 14)
    net.add_edge(d, c, 7)
    net.add_edge(c, t, 20)
    net.add_edge(d, t, 4)
    return net, s, t


@pytest.mark.parametrize("name,solver", SOLVERS.items())
class TestSolversOnKnownInstances:
    def test_clrs_example(self, name, solver):
        net, s, t = build_simple_network()
        assert solver(net, s, t) == 23

    def test_single_edge(self, name, solver):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 5)
        assert solver(net, 0, 1) == 5

    def test_disconnected(self, name, solver):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 5)
        assert solver(net, 0, 2) == 0

    def test_serial_bottleneck(self, name, solver):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 10)
        net.add_edge(1, 2, 3)
        net.add_edge(2, 3, 10)
        assert solver(net, 0, 3) == 3

    def test_parallel_paths(self, name, solver):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 4)
        net.add_edge(0, 2, 6)
        net.add_edge(1, 3, 5)
        net.add_edge(2, 3, 5)
        assert solver(net, 0, 3) == 9

    def test_zero_capacity_edge(self, name, solver):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 0)
        assert solver(net, 0, 1) == 0

    def test_flow_conservation_after_solve(self, name, solver):
        net, s, t = build_simple_network()
        solver(net, s, t)
        assert net.check_conservation(s, t)

    def test_same_source_sink_rejected(self, name, solver):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 1)
        with pytest.raises(ValueError):
            solver(net, 0, 0)

    def test_out_of_range_terminals_rejected(self, name, solver):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 1)
        with pytest.raises(ValueError):
            solver(net, 0, 5)
        with pytest.raises(ValueError):
            solver(net, 5, 1)


def random_network(rng: np.random.Generator, num_nodes: int, num_edges: int, max_cap: int):
    net = FlowNetwork(num_nodes)
    graph = nx.DiGraph()
    graph.add_nodes_from(range(num_nodes))
    for _ in range(num_edges):
        a = int(rng.integers(num_nodes))
        b = int(rng.integers(num_nodes))
        if a == b:
            continue
        cap = int(rng.integers(1, max_cap + 1))
        net.add_edge(a, b, cap)
        if graph.has_edge(a, b):
            graph[a][b]["capacity"] += cap
        else:
            graph.add_edge(a, b, capacity=cap)
    return net, graph


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_instances_match_networkx(self, seed):
        rng = np.random.default_rng(seed)
        num_nodes = int(rng.integers(4, 14))
        num_edges = int(rng.integers(num_nodes, 4 * num_nodes))
        net, graph = random_network(rng, num_nodes, num_edges, max_cap=12)
        source, sink = 0, num_nodes - 1
        expected = nx.maximum_flow_value(graph, source, sink) if graph.has_node(source) else 0
        for name, solver in SOLVERS.items():
            work = net.copy()
            value = solver(work, source, sink)
            assert value == expected, f"{name} disagrees with networkx on seed {seed}"

    @pytest.mark.parametrize("seed", range(8))
    def test_solvers_agree_on_bipartite_instances(self, seed):
        rng = np.random.default_rng(100 + seed)
        left, right = int(rng.integers(2, 8)), int(rng.integers(2, 8))
        net = FlowNetwork(left + right + 2)
        source, sink = 0, left + right + 1
        for i in range(left):
            net.add_edge(source, 1 + i, int(rng.integers(1, 4)))
        for j in range(right):
            net.add_edge(1 + left + j, sink, int(rng.integers(1, 4)))
        for i in range(left):
            for j in range(right):
                if rng.random() < 0.4:
                    net.add_edge(1 + i, 1 + left + j, 1)
        values = {name: solver(net.copy(), source, sink) for name, solver in SOLVERS.items()}
        assert len(set(values.values())) == 1, values


class TestPropertyBased:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        num_nodes=st.integers(3, 10),
        density=st.floats(0.1, 0.7),
        max_cap=st.integers(1, 20),
    )
    def test_dinic_equals_edmonds_karp(self, seed, num_nodes, density, max_cap):
        rng = np.random.default_rng(seed)
        net = FlowNetwork(num_nodes)
        for a in range(num_nodes):
            for b in range(num_nodes):
                if a != b and rng.random() < density:
                    net.add_edge(a, b, int(rng.integers(1, max_cap + 1)))
        v1 = dinic_max_flow(net.copy(), 0, num_nodes - 1)
        v2 = edmonds_karp_max_flow(net.copy(), 0, num_nodes - 1)
        v3 = push_relabel_max_flow(net.copy(), 0, num_nodes - 1)
        assert v1 == v2 == v3

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), cap_scale=st.integers(1, 5))
    def test_flow_value_scales_with_capacities(self, seed, cap_scale):
        rng = np.random.default_rng(seed)
        num_nodes = 6
        edges = []
        for a in range(num_nodes):
            for b in range(num_nodes):
                if a != b and rng.random() < 0.5:
                    edges.append((a, b, int(rng.integers(1, 8))))
        base = FlowNetwork(num_nodes)
        scaled = FlowNetwork(num_nodes)
        for a, b, cap in edges:
            base.add_edge(a, b, cap)
            scaled.add_edge(a, b, cap * cap_scale)
        v_base = dinic_max_flow(base, 0, num_nodes - 1)
        v_scaled = dinic_max_flow(scaled, 0, num_nodes - 1)
        assert v_scaled == v_base * cap_scale
