"""Tests for the simulator building blocks: clock, swarm registry, request
pool, metrics and trace."""

import numpy as np
import pytest

from repro.core.matching import StripeRequest
from repro.sim.clock import RoundClock
from repro.sim.events import (
    ConnectionEvent,
    DemandEvent,
    InfeasibilityEvent,
    PlaybackStartEvent,
    RequestEvent,
)
from repro.sim.metrics import MetricsCollector
from repro.sim.scheduler import ActiveRequestPool
from repro.sim.swarm import SwarmRegistry, max_new_members
from repro.sim.trace import SimulationTrace


class TestRoundClock:
    def test_advance(self):
        clock = RoundClock()
        assert clock.now == 0
        assert clock.advance() == 1
        assert clock.advance(3) == 4

    def test_reset(self):
        clock = RoundClock(5)
        clock.reset()
        assert clock.now == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RoundClock(-1)
        with pytest.raises(ValueError):
            RoundClock().advance(-1)


class TestMaxNewMembers:
    def test_empty_swarm_bootstraps_with_ceil_mu(self):
        assert max_new_members(0, 1.5) == 2
        assert max_new_members(0, 1.0) == 1

    def test_growth_factor(self):
        assert max_new_members(10, 1.5) == 5
        assert max_new_members(10, 1.0) == 0

    def test_ceiling_applied(self):
        assert max_new_members(3, 1.4) == 2  # ceil(4.2) - 3

    def test_validation(self):
        with pytest.raises(ValueError):
            max_new_members(-1, 1.5)
        with pytest.raises(ValueError):
            max_new_members(3, 0.9)


class TestSwarmRegistry:
    def test_membership_and_expiry(self):
        reg = SwarmRegistry(mu=2.0, duration=5)
        reg.enter(video_id=0, box_id=1, time=0)
        reg.enter(video_id=0, box_id=2, time=1)
        assert reg.size(0, 1) == 2
        assert set(reg.members(0, 1)) == {1, 2}
        # Box 1 leaves the swarm at time 5 (entered at 0, duration 5).
        assert reg.size(0, 5) == 1
        assert reg.size(0, 6) == 0

    def test_growth_violation_recorded(self):
        reg = SwarmRegistry(mu=1.5, duration=10)
        reg.enter(0, 1, time=0)
        reg.enter(0, 2, time=0)  # ceil(max(0,1)*1.5) = 2 allowed at t=0
        reg.enter(0, 3, time=0)  # third joiner violates the bound
        assert len(reg.violations) == 1
        violation = reg.violations[0]
        assert violation.video_id == 0
        assert violation.new_size == 3
        assert violation.allowed_size == 2

    def test_no_violation_at_maximal_growth(self):
        reg = SwarmRegistry(mu=2.0, duration=100)
        boxes = iter(range(1000))
        size = 0
        for t in range(6):
            allowed = max_new_members(size, 2.0)
            for _ in range(allowed):
                reg.enter(0, next(boxes), time=t)
            size = reg.size(0, t)
        assert reg.violations == ()
        # Doubling from 2 initial members over rounds 0..5: 2·2⁵ = 64.
        assert reg.size(0, 5) == 64

    def test_admissible_joiners(self):
        reg = SwarmRegistry(mu=1.5, duration=10)
        reg.enter(0, 1, time=0)
        assert reg.admissible_joiners(0, time=1) == 1  # ceil(1*1.5) = 2 → 1 more
        reg.enter(0, 2, time=1)
        assert reg.admissible_joiners(0, time=1) == 0

    def test_history_and_active_videos(self):
        reg = SwarmRegistry(mu=2.0, duration=10)
        reg.enter(3, 1, time=2)
        assert reg.history(3) == {2: 1}
        assert reg.active_videos(2) == [3]
        assert reg.active_videos(20) == []


class TestActiveRequestPool:
    def make_request(self, stripe=0, time=0, box=0):
        return StripeRequest(stripe_id=stripe, request_time=time, box_id=box)

    def test_add_and_request_set(self):
        pool = ActiveRequestPool(duration=10)
        pool.add(self.make_request(1), demand_index=0)
        pool.add(self.make_request(2), demand_index=0)
        assert len(pool) == 2
        assert pool.request_set().stripe_multiset() == [1, 2]

    def test_mark_matched_sets_first_round_only(self):
        pool = ActiveRequestPool(duration=10)
        pool.add(self.make_request())
        pool.mark_matched([0], time=4)
        pool.mark_matched([0], time=7)
        assert pool.active[0].first_matched_round == 4
        assert pool.active[0].is_served

    def test_expire_after_duration(self):
        pool = ActiveRequestPool(duration=5)
        pool.add(self.make_request(time=0))
        pool.mark_matched([0], time=1)
        assert pool.expire(current_time=5) == []
        removed = pool.expire(current_time=6)
        assert len(removed) == 1
        assert len(pool) == 0
        assert pool.expired_unserved == 0

    def test_unserved_requests_counted_on_expiry(self):
        pool = ActiveRequestPool(duration=3)
        pool.add(self.make_request(time=0))
        pool.expire(current_time=3)
        assert pool.expired_unserved == 1

    def test_by_demand_grouping(self):
        pool = ActiveRequestPool(duration=10)
        pool.add(self.make_request(1), demand_index=0)
        pool.add(self.make_request(2), demand_index=0)
        pool.add(self.make_request(3), demand_index=1)
        pool.add(self.make_request(4), demand_index=None)
        groups = pool.by_demand()
        assert len(groups[0]) == 2
        assert len(groups[1]) == 1
        assert None not in groups

    def test_duration_validation(self):
        with pytest.raises(ValueError):
            ActiveRequestPool(duration=0)


class TestMetricsCollector:
    def test_round_accumulation(self):
        collector = MetricsCollector(num_boxes=4)
        collector.record_demands(2)
        collector.record_requests(6)
        collector.record_round(
            time=0,
            active_requests=6,
            new_requests=6,
            matched=6,
            feasible=True,
            box_load=np.array([2, 2, 1, 1]),
            upload_capacity=12,
        )
        collector.record_round(
            time=1,
            active_requests=8,
            new_requests=2,
            matched=7,
            feasible=False,
            box_load=np.array([3, 2, 1, 1]),
            upload_capacity=12,
        )
        collector.record_startup_delay(3)
        collector.record_startup_delay(5)
        collector.record_swarm_violations(1)
        metrics = collector.finalize()
        assert metrics.rounds == 2
        assert metrics.total_demands == 2
        assert metrics.total_requests == 6
        assert metrics.infeasible_rounds == 1
        assert not metrics.all_feasible
        assert metrics.unmatched_requests == 1
        assert metrics.max_startup_delay == 5
        assert metrics.mean_startup_delay == pytest.approx(4.0)
        assert metrics.peak_utilization == pytest.approx(7 / 12)
        assert metrics.peak_box_load == 3
        assert metrics.swarm_growth_violations == 1
        assert metrics.round_stats[0].utilization == pytest.approx(0.5)

    def test_empty_run(self):
        metrics = MetricsCollector(num_boxes=2).finalize()
        assert metrics.rounds == 0
        assert metrics.all_feasible
        assert metrics.max_startup_delay is None
        assert metrics.describe()["mean_startup_delay"] != metrics.describe()["mean_startup_delay"]  # NaN

    def test_validation(self):
        with pytest.raises(ValueError):
            MetricsCollector(0)
        collector = MetricsCollector(2)
        with pytest.raises(ValueError):
            collector.record_demands(-1)
        with pytest.raises(ValueError):
            collector.record_startup_delay(-1)


class TestSimulationTrace:
    def test_queries(self):
        trace = SimulationTrace()
        trace.record(DemandEvent(time=0, box_id=1, video_id=2))
        trace.record(RequestEvent(time=0, box_id=1, stripe_id=8, is_preload=True))
        trace.record(ConnectionEvent(time=1, server_box=3, client_box=1, stripe_id=8))
        trace.record(PlaybackStartEvent(time=2, box_id=1, video_id=2, startup_delay=3))
        trace.record(InfeasibilityEvent(time=5, unmatched=2))
        assert len(trace) == 5
        assert len(trace.demands()) == 1
        assert len(trace.requests()) == 1
        assert len(trace.connections()) == 1
        assert len(trace.playback_starts()) == 1
        assert len(trace.infeasibilities()) == 1
        assert len(trace.at_round(0)) == 2
        assert trace.startup_delay_of(1, 2) == 3
        assert trace.startup_delay_of(9, 9) is None
        assert len(trace.filter(lambda e: getattr(e, "box_id", None) == 1)) == 3

    def test_export(self):
        trace = SimulationTrace()
        trace.extend(
            [
                DemandEvent(time=0, box_id=1, video_id=2),
                InfeasibilityEvent(time=1, unmatched=3, witness_requests=((0, 0, 1),)),
            ]
        )
        records = trace.to_records()
        assert records[0]["event"] == "DemandEvent"
        assert records[1]["unmatched"] == 3
        json_text = trace.to_json()
        assert "DemandEvent" in json_text
