"""Differential solver tests: Hopcroft–Karp vs Dinic vs push–relabel.

:func:`repro.scenarios.oracle.check_matching_instance` re-solves each
instance with all three kernels and verifies cardinality agreement,
feasibility agreement, the max-flow/min-cut certificate on both flow
networks, assignment validity and Hall witnesses.  This module feeds it

* 200 randomized instances spanning feasible, overloaded and degenerate
  regimes (the acceptance floor of the differential harness),
* crafted edge cases: zero capacities, empty adjacencies, single-box
  instances, duplicate edges,
* full scenario replays through :func:`run_differential_oracle`, which
  checks the engine's *warm-started* per-round matchings against cold
  oracle solves on the live possession index.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flow.bipartite import solve_b_matching
from repro.flow.hopcroft_karp import csr_from_edges
from repro.scenarios.oracle import check_matching_instance, run_differential_oracle
from repro.scenarios.registry import scenario_names


def _random_instance(rng: np.random.Generator):
    """One random bipartite instance (possibly degenerate)."""
    num_left = int(rng.integers(0, 28))
    num_right = int(rng.integers(1, 12))
    # Mix of tight and slack capacity regimes, including zero-capacity boxes.
    capacities = rng.integers(0, 4, size=num_right).tolist()
    edges = []
    for i in range(num_left):
        degree = int(rng.integers(0, min(num_right, 5) + 1))
        if degree:
            for j in rng.choice(num_right, size=degree, replace=False):
                edges.append((i, int(j)))
    # Occasionally duplicate some edges — the kernels must tolerate them.
    if edges and rng.random() < 0.3:
        for _ in range(int(rng.integers(1, 4))):
            edges.append(edges[int(rng.integers(len(edges)))])
    indptr, indices = csr_from_edges(num_left, num_right, edges)
    return num_left, num_right, indptr, indices, capacities


class TestRandomizedAgreement:
    def test_two_hundred_randomized_instances_agree(self):
        rng = np.random.default_rng(20260729)
        checked = 0
        infeasible_seen = 0
        for _ in range(200):
            num_left, num_right, indptr, indices, caps = _random_instance(rng)
            errors = check_matching_instance(
                num_left, num_right, indptr, indices, caps,
                context=f"random#{checked}",
            )
            assert errors == [], errors
            checked += 1
            if num_left > sum(caps):
                infeasible_seen += 1
        assert checked == 200
        # The generator must actually exercise the infeasible branch.
        assert infeasible_seen > 10

    def test_reference_assignment_cross_check(self):
        rng = np.random.default_rng(7)
        for _ in range(25):
            num_left, num_right, indptr, indices, caps = _random_instance(rng)
            reference = solve_b_matching(
                num_left,
                num_right,
                [
                    (i, int(indices[e]))
                    for i in range(num_left)
                    for e in range(int(indptr[i]), int(indptr[i + 1]))
                ],
                caps,
                method="push_relabel",
            )
            errors = check_matching_instance(
                num_left, num_right, indptr, indices, caps,
                reference_assignment=reference.assignment,
            )
            assert errors == [], errors


class TestEdgeCases:
    def test_empty_instance(self):
        assert check_matching_instance(0, 3, [0], [], [1, 1, 1]) == []

    def test_empty_adjacency_rows(self):
        # Three requests, none of which any box can serve.
        indptr, indices = csr_from_edges(3, 2, [])
        assert check_matching_instance(3, 2, indptr, indices, [2, 2]) == []

    def test_all_zero_capacities(self):
        indptr, indices = csr_from_edges(2, 2, [(0, 0), (1, 1)])
        assert check_matching_instance(2, 2, indptr, indices, [0, 0]) == []

    def test_single_box_bottleneck(self):
        # Every request can only reach box 0 with capacity 1.
        edges = [(i, 0) for i in range(4)]
        indptr, indices = csr_from_edges(4, 1, edges)
        assert check_matching_instance(4, 1, indptr, indices, [1]) == []

    def test_single_box_exact_capacity(self):
        edges = [(i, 0) for i in range(4)]
        indptr, indices = csr_from_edges(4, 1, edges)
        assert check_matching_instance(4, 1, indptr, indices, [4]) == []

    def test_detects_invalid_reference_assignment(self):
        indptr, indices = csr_from_edges(2, 2, [(0, 0), (1, 1)])
        errors = check_matching_instance(
            2, 2, indptr, indices, [1, 1], reference_assignment=[1, 1]
        )
        assert any("outside its" in e for e in errors)

    def test_detects_undermatched_reference(self):
        indptr, indices = csr_from_edges(2, 2, [(0, 0), (1, 1)])
        errors = check_matching_instance(
            2, 2, indptr, indices, [1, 1], reference_assignment=[-1, -1]
        )
        assert any("cold" in e for e in errors)


class TestSolverDispatch:
    def test_push_relabel_and_edmonds_karp_methods(self):
        edges = [(0, 0), (1, 0), (1, 1), (2, 1)]
        for method in ("dinic", "push_relabel", "edmonds_karp"):
            result = solve_b_matching(3, 2, edges, [1, 2], method=method)
            assert result.feasible
            assert result.matched == 3
        with pytest.raises(ValueError, match="unknown b-matching method"):
            solve_b_matching(3, 2, edges, [1, 2], method="simplex")

    def test_flow_methods_reject_hk_only_demands(self):
        with pytest.raises(ValueError, match="unit left demands"):
            solve_b_matching(
                2, 2, [(0, 0), (1, 1)], [2, 2], left_demands=[2, 1],
                method="hopcroft_karp",
            )


class TestScenarioOracle:
    # Scale tiers are oracle-checked by the soak harness in
    # tests/test_scale_stress.py (re-solving 10k-box instances with the
    # max-flow oracles per round is too heavy for this sweep).
    @pytest.mark.parametrize(
        "name",
        [n for n in scenario_names() if not n.startswith("scale_tier")],
    )
    def test_every_scenario_agrees_for_eight_rounds(self, name):
        report = run_differential_oracle(name, seed=11, num_rounds=8)
        assert report.ok, "\n".join(report.disagreements)
        assert report.instances_checked == 8

    def test_near_threshold_overload_rounds_agree(self):
        # Seed 2 drives this scenario into infeasible rounds, exercising
        # the witness branch on the engine's real trajectory.
        report = run_differential_oracle("near_threshold_load", seed=2)
        assert report.ok, "\n".join(report.disagreements)
        assert report.rounds_checked == 20

    def test_sampling_and_limits(self):
        report = run_differential_oracle(
            "steady_state", seed=3, num_rounds=10, sample_every=2, max_instances=3
        )
        assert report.ok
        assert report.rounds_checked == 10
        assert report.instances_checked == 3
        with pytest.raises(ValueError, match="sample_every"):
            run_differential_oracle("steady_state", sample_every=0)
