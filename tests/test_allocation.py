"""Tests for repro.core.allocation (random allocation schemes, Section 2.1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.allocation import (
    Allocation,
    AllocationError,
    random_independent_allocation,
    random_permutation_allocation,
    round_robin_allocation,
)
from repro.core.parameters import BoxPopulation, homogeneous_population
from repro.core.video import Catalog


@pytest.fixture
def catalog():
    return Catalog(num_videos=10, num_stripes=4, duration=30)


@pytest.fixture
def population():
    return homogeneous_population(20, u=1.5, d=4.0)


class TestAllocationContainer:
    def test_replica_array_shape_validated(self, catalog, population):
        with pytest.raises(ValueError):
            Allocation(catalog, population, 2, np.zeros(5, dtype=np.int64))

    def test_replica_box_range_validated(self, catalog, population):
        bad = np.full(catalog.total_stripes * 2, population.n, dtype=np.int64)
        with pytest.raises(ValueError):
            Allocation(catalog, population, 2, bad)

    def test_lookup_consistency(self, catalog, population):
        alloc = random_permutation_allocation(catalog, population, 3, random_state=0)
        # stripe -> boxes and box -> stripes must be mutually consistent.
        for stripe_id in range(catalog.total_stripes):
            for box in alloc.boxes_with_stripe(stripe_id):
                assert stripe_id in alloc.stripes_on_box(int(box))
        for box_id in range(population.n):
            for stripe in alloc.stripes_on_box(box_id):
                assert box_id in alloc.boxes_with_stripe(int(stripe))

    def test_replica_boxes_of_stripe_length(self, catalog, population):
        alloc = random_permutation_allocation(catalog, population, 3, random_state=0)
        assert alloc.replica_boxes_of_stripe(5).shape == (3,)

    def test_out_of_range_lookups(self, catalog, population):
        alloc = random_permutation_allocation(catalog, population, 2, random_state=0)
        with pytest.raises(ValueError):
            alloc.boxes_with_stripe(catalog.total_stripes)
        with pytest.raises(ValueError):
            alloc.stripes_on_box(population.n)
        with pytest.raises(ValueError):
            alloc.replica_boxes_of_stripe(-1)

    def test_describe_keys(self, catalog, population):
        alloc = random_permutation_allocation(catalog, population, 2, random_state=0)
        desc = alloc.describe()
        for key in ("scheme", "n", "m", "c", "k", "load_imbalance", "respects_storage"):
            assert key in desc


class TestPermutationAllocation:
    def test_total_replicas(self, catalog, population):
        alloc = random_permutation_allocation(catalog, population, 3, random_state=1)
        assert alloc.total_replicas == catalog.total_stripes * 3
        assert int(alloc.box_loads().sum()) == alloc.total_replicas

    def test_respects_storage_by_construction(self, catalog, population):
        alloc = random_permutation_allocation(catalog, population, 3, random_state=1)
        assert alloc.respects_storage()

    def test_insufficient_storage_raises(self, catalog):
        tiny = homogeneous_population(3, u=1.5, d=1.0)  # 3*1*4 = 12 slots < 40*k
        with pytest.raises(AllocationError):
            random_permutation_allocation(catalog, tiny, 2, random_state=0)

    def test_deterministic_given_seed(self, catalog, population):
        a = random_permutation_allocation(catalog, population, 3, random_state=42)
        b = random_permutation_allocation(catalog, population, 3, random_state=42)
        np.testing.assert_array_equal(a.replica_box, b.replica_box)

    def test_different_seeds_differ(self, catalog, population):
        a = random_permutation_allocation(catalog, population, 3, random_state=1)
        b = random_permutation_allocation(catalog, population, 3, random_state=2)
        assert not np.array_equal(a.replica_box, b.replica_box)

    def test_heterogeneous_storage_respected(self, catalog):
        pop = BoxPopulation([1.0] * 10, [2.0] * 5 + [8.0] * 5)
        alloc = random_permutation_allocation(catalog, pop, 1, random_state=0)
        assert alloc.respects_storage()

    def test_scheme_label(self, catalog, population):
        alloc = random_permutation_allocation(catalog, population, 2, random_state=0)
        assert alloc.scheme == "permutation"

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), k=st.integers(1, 5))
    def test_property_loads_never_exceed_capacity(self, seed, k):
        catalog = Catalog(num_videos=6, num_stripes=3, duration=10)
        population = homogeneous_population(12, u=1.5, d=float(max(k, 2)))
        alloc = random_permutation_allocation(catalog, population, k, random_state=seed)
        slots = population.storage_slots(3)
        assert np.all(alloc.box_loads() <= slots)


class TestIndependentAllocation:
    def test_basic_properties(self, catalog, population):
        alloc = random_independent_allocation(catalog, population, 3, random_state=0)
        assert alloc.scheme == "independent"
        assert alloc.total_replicas == catalog.total_stripes * 3
        assert alloc.respects_storage()

    def test_fail_policy(self, catalog):
        # Storage exactly equal to replicas: very likely some box overflows.
        pop = homogeneous_population(20, u=1.5, d=2.0)  # 20*2*4 = 160 slots = 40*4 replicas
        with pytest.raises(AllocationError):
            # With storage completely tight the first overflow raises.
            random_independent_allocation(catalog, pop, 4, random_state=0, on_full="fail")

    def test_ignore_policy_can_overflow(self, catalog):
        pop = homogeneous_population(20, u=1.5, d=2.0)
        alloc = random_independent_allocation(
            catalog, pop, 4, random_state=0, on_full="ignore"
        )
        # With ignore the allocation is complete but loads may exceed capacity.
        assert alloc.total_replicas == catalog.total_stripes * 4
        assert not alloc.respects_storage() or alloc.load_imbalance() >= 1.0

    def test_unknown_policy_rejected(self, catalog, population):
        with pytest.raises(ValueError):
            random_independent_allocation(catalog, population, 2, on_full="bogus")

    def test_storage_proportional_bias(self, catalog):
        # A box with 9x the storage should receive roughly 9x the replicas.
        pop = BoxPopulation([1.0, 1.0], [36.0, 4.0])
        alloc = random_independent_allocation(catalog, pop, 2, random_state=3)
        loads = alloc.box_loads()
        assert loads[0] > loads[1]

    def test_insufficient_storage_raises(self, catalog):
        tiny = homogeneous_population(2, u=1.0, d=1.0)
        with pytest.raises(AllocationError):
            random_independent_allocation(catalog, tiny, 3, random_state=0)

    def test_deterministic_given_seed(self, catalog, population):
        a = random_independent_allocation(catalog, population, 2, random_state=5)
        b = random_independent_allocation(catalog, population, 2, random_state=5)
        np.testing.assert_array_equal(a.replica_box, b.replica_box)


class TestRoundRobinAllocation:
    def test_balanced_loads(self, catalog, population):
        alloc = round_robin_allocation(catalog, population, 2)
        loads = alloc.box_loads()
        assert loads.max() - loads.min() <= 1
        assert alloc.scheme == "round_robin"

    def test_respects_storage(self, catalog):
        pop = BoxPopulation([1.0] * 8, [1.0] * 4 + [20.0] * 4)
        alloc = round_robin_allocation(catalog, pop, 2)
        assert alloc.respects_storage()

    def test_offset_changes_placement(self, catalog, population):
        a = round_robin_allocation(catalog, population, 2, offset=0)
        b = round_robin_allocation(catalog, population, 2, offset=3)
        assert not np.array_equal(a.replica_box, b.replica_box)

    def test_insufficient_storage(self, catalog):
        tiny = homogeneous_population(2, u=1.0, d=1.0)
        with pytest.raises(AllocationError):
            round_robin_allocation(catalog, tiny, 5)


class TestCoverageStatistics:
    def test_distinct_coverage_counts_unique_holders(self, catalog, population):
        alloc = random_permutation_allocation(catalog, population, 4, random_state=0)
        coverage = alloc.distinct_coverage()
        assert coverage.shape == (catalog.total_stripes,)
        assert np.all(coverage >= 1)
        assert np.all(coverage <= 4)

    def test_distinct_coverage_exact_on_crafted_allocation(self, catalog, population):
        # Put every replica of stripe 0 on the same box: coverage must be 1.
        k = 2
        replica_box = np.arange(catalog.total_stripes * k) % population.n
        replica_box[0:k] = 5
        alloc = Allocation(catalog, population, k, replica_box)
        assert alloc.distinct_coverage()[0] == 1

    def test_load_imbalance_of_balanced_allocation_is_one(self, catalog, population):
        alloc = round_robin_allocation(catalog, population, 2)
        assert alloc.load_imbalance() == pytest.approx(1.0, abs=0.3)

    def test_stripe_sets_by_box(self, catalog, population):
        alloc = random_permutation_allocation(catalog, population, 2, random_state=0)
        sets = alloc.stripe_sets_by_box()
        assert len(sets) == population.n
        total = sum(len(s) for s in sets)
        assert total <= alloc.total_replicas  # duplicates collapse
