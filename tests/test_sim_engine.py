"""Integration tests for the round-based VoD simulator."""

import numpy as np
import pytest

from repro.core.allocation import random_permutation_allocation
from repro.core.heterogeneous import RelayedPreloadingScheduler, compute_compensation_plan
from repro.core.parameters import BoxPopulation, homogeneous_population
from repro.core.preloading import Demand
from repro.core.video import Catalog
from repro.sim.engine import VodSimulator
from repro.sim.events import ConnectionEvent, PlaybackStartEvent
from repro.workloads.base import StaticDemandSchedule
from repro.workloads.flashcrowd import FlashCrowdWorkload
from repro.workloads.adversarial import MissingVideoAdversary
from repro.workloads.popularity import ZipfDemandWorkload


def build_system(n=40, u=2.0, d=4.0, m=20, c=4, k=4, duration=30, seed=0):
    catalog = Catalog(num_videos=m, num_stripes=c, duration=duration)
    population = homogeneous_population(n, u=u, d=d)
    allocation = random_permutation_allocation(catalog, population, k, random_state=seed)
    return catalog, population, allocation


class TestBasicRuns:
    def test_single_demand_full_lifecycle(self):
        catalog, population, allocation = build_system()
        schedule = StaticDemandSchedule([Demand(time=1, box_id=0, video_id=3)])
        sim = VodSimulator(allocation, mu=1.5, record_connections=True)
        result = sim.run(schedule, num_rounds=6)
        assert result.feasible
        assert result.metrics.total_demands == 1
        # c requests total: 1 preload + (c-1) postponed.
        assert result.metrics.total_requests == catalog.num_stripes_per_video
        starts = result.trace.playback_starts()
        assert len(starts) == 1
        assert starts[0].box_id == 0
        assert starts[0].video_id == 3
        assert starts[0].startup_delay == 3
        # Connections only reference boxes that possess the stripes.
        for event in result.trace.connections():
            assert event.server_box != event.client_box

    def test_empty_workload(self):
        _, _, allocation = build_system()
        sim = VodSimulator(allocation, mu=1.5)
        result = sim.run(StaticDemandSchedule([]), num_rounds=5)
        assert result.feasible
        assert result.metrics.total_demands == 0
        assert result.metrics.total_requests == 0

    def test_startup_delay_is_three_rounds_for_all_boxes(self):
        catalog, population, allocation = build_system(n=60, m=30, k=4)
        sim = VodSimulator(allocation, mu=1.5)
        workload = FlashCrowdWorkload(mu=1.5, random_state=3)
        result = sim.run(workload, num_rounds=8)
        assert result.feasible
        assert result.metrics.max_startup_delay == 3
        assert result.metrics.mean_startup_delay == pytest.approx(3.0)

    def test_busy_box_demands_are_rejected(self):
        catalog, population, allocation = build_system(duration=20)
        schedule = StaticDemandSchedule(
            [Demand(time=1, box_id=0, video_id=3), Demand(time=3, box_id=0, video_id=4)]
        )
        sim = VodSimulator(allocation, mu=1.5)
        result = sim.run(schedule, num_rounds=6)
        # The schedule filters on free boxes, so the second demand is simply
        # not emitted; nothing is rejected and only one demand is accepted.
        assert result.metrics.total_demands == 1
        assert result.rejected_demands == 0

    def test_workload_with_wrong_round_raises(self):
        _, _, allocation = build_system()

        class BadWorkload:
            def demands_for_round(self, view):
                return [Demand(time=view.time + 1, box_id=0, video_id=0)]

        sim = VodSimulator(allocation, mu=1.5)
        with pytest.raises(ValueError):
            sim.run(BadWorkload(), num_rounds=2)

    def test_demand_outside_catalog_raises(self):
        _, _, allocation = build_system(m=5)

        class BadWorkload:
            def demands_for_round(self, view):
                if view.time == 0:
                    return [Demand(time=0, box_id=0, video_id=50)]
                return []

        sim = VodSimulator(allocation, mu=1.5)
        with pytest.raises(ValueError):
            sim.run(BadWorkload(), num_rounds=1)

    def test_num_rounds_validation(self):
        _, _, allocation = build_system()
        sim = VodSimulator(allocation, mu=1.5)
        with pytest.raises(ValueError):
            sim.run(StaticDemandSchedule([]), num_rounds=0)


class TestFeasibilityRegimes:
    def test_well_provisioned_system_serves_flash_crowd(self):
        catalog, population, allocation = build_system(n=60, u=2.0, m=30, k=4)
        sim = VodSimulator(allocation, mu=1.5)
        result = sim.run(FlashCrowdWorkload(mu=1.5, random_state=0), num_rounds=10)
        assert result.feasible
        assert result.metrics.swarm_growth_violations == 0
        assert result.metrics.total_demands > 10

    def test_zipf_workload_feasible_above_threshold(self):
        catalog, population, allocation = build_system(n=50, u=1.5, m=25, k=4, c=4)
        sim = VodSimulator(allocation, mu=2.0)
        result = sim.run(ZipfDemandWorkload(arrival_rate=4, random_state=1), num_rounds=12)
        assert result.feasible

    def test_under_provisioned_system_fails_under_adversary(self):
        # u = 0.5 < 1 with a large catalog: the missing-video adversary
        # must create an infeasible round quickly.
        catalog, population, allocation = build_system(
            n=40, u=0.5, d=2.0, m=26, c=4, k=3, seed=5
        )
        sim = VodSimulator(allocation, mu=1.5, stop_on_infeasible=True)
        result = sim.run(MissingVideoAdversary(random_state=0), num_rounds=6)
        assert not result.feasible
        assert result.stopped_early
        assert len(result.trace.infeasibilities()) >= 1

    def test_stop_on_infeasible_false_continues(self):
        catalog, population, allocation = build_system(
            n=40, u=0.5, d=2.0, m=26, c=4, k=3, seed=5
        )
        sim = VodSimulator(allocation, mu=1.5, stop_on_infeasible=False)
        result = sim.run(MissingVideoAdversary(random_state=0), num_rounds=6)
        assert not result.feasible
        assert not result.stopped_early
        assert result.metrics.rounds == 6

    def test_infeasibility_event_carries_witness(self):
        catalog, population, allocation = build_system(
            n=40, u=0.5, d=2.0, m=26, c=4, k=3, seed=5
        )
        sim = VodSimulator(allocation, mu=1.5, stop_on_infeasible=True)
        result = sim.run(MissingVideoAdversary(random_state=0), num_rounds=6)
        event = result.trace.infeasibilities()[0]
        assert event.unmatched > 0
        assert event.witness_requests is None or len(event.witness_requests) > 0


class TestCacheSwarming:
    def test_later_viewers_served_by_earlier_viewers(self):
        # Tiny allocation capacity but a growing swarm: the flash crowd can
        # only be served because earlier viewers cache and re-serve stripes.
        catalog = Catalog(num_videos=4, num_stripes=2, duration=30)
        population = homogeneous_population(30, u=1.5, d=1.0)
        allocation = random_permutation_allocation(catalog, population, 2, random_state=2)
        sim = VodSimulator(allocation, mu=2.0, record_connections=True)
        result = sim.run(
            FlashCrowdWorkload(mu=2.0, target_videos=(0,), random_state=4), num_rounds=8
        )
        assert result.feasible
        # Some connection must originate from a box that does NOT store the
        # stripe statically (i.e. it serves from its playback cache).
        cache_served = 0
        for event in result.trace.connections():
            holders = set(allocation.boxes_with_stripe(event.stripe_id).tolist())
            if event.server_box not in holders:
                cache_served += 1
        assert cache_served > 0

    def test_swarm_growth_violation_detected_for_unthrottled_adversary(self):
        catalog, population, allocation = build_system(n=40, u=2.0, m=20, k=4)
        sim = VodSimulator(allocation, mu=1.1)
        # The unthrottled missing-video adversary floods swarms faster than µ.
        result = sim.run(MissingVideoAdversary(random_state=1), num_rounds=3)
        assert result.metrics.swarm_growth_violations > 0


class TestHeterogeneousRuns:
    def test_relay_strategy_end_to_end(self):
        c = 8
        uploads = [4.0] * 10 + [0.5] * 10
        storages = [u * 2.5 for u in uploads]
        population = BoxPopulation(uploads, storages)
        catalog = Catalog(num_videos=10, num_stripes=c, duration=40)
        allocation = random_permutation_allocation(catalog, population, 4, random_state=3)
        plan = compute_compensation_plan(population, u_star=1.5)
        scheduler = RelayedPreloadingScheduler(catalog, population, plan, mu=1.1)
        sim = VodSimulator(
            allocation,
            mu=1.1,
            scheduler=scheduler,
            compensation_plan=plan,
        )
        result = sim.run(ZipfDemandWorkload(arrival_rate=2, random_state=2), num_rounds=12)
        assert result.feasible
        assert result.metrics.total_demands > 0

    def test_reserved_upload_reduces_matching_capacity(self):
        uploads = [4.0] * 5 + [0.5] * 5
        storages = [u * 2.5 for u in uploads]
        population = BoxPopulation(uploads, storages)
        catalog = Catalog(num_videos=5, num_stripes=4, duration=20)
        allocation = random_permutation_allocation(catalog, population, 3, random_state=1)
        plan = compute_compensation_plan(population, u_star=1.5)
        sim_plain = VodSimulator(allocation, mu=1.2)
        sim_reserved = VodSimulator(allocation, mu=1.2, compensation_plan=plan)
        assert (
            sim_reserved._upload_capacity_total < sim_plain._upload_capacity_total
        )
