"""Scale-tier and stress/soak tests for the vectorized engine core.

This is the scale-tier counterpart of the toy-size golden suite: the
registered ``scale_tier_*`` scenarios must build and replay
deterministically at 10k-500k boxes, and the long-horizon soak harness
(:func:`repro.scenarios.run_soak`) must hold three properties at 10k
boxes under stress profiles:

* bounded memory — post-warmup tracemalloc growth stays under a
  per-round budget (catching per-request object or trace leaks);
* digest stability — repeating the run reproduces the metric digest bit
  for bit;
* solver-oracle agreement — sampled live rounds re-solved with the
  max-flow oracles (cardinality, feasibility, certificates, assignment
  validity).

The long runs here are sized for CI (a few hundred rounds); the CLI
``python -m repro.scenarios soak`` runs the full 500+-round versions.
"""

from __future__ import annotations

import pytest

from repro.scenarios.build import build_scenario
from repro.scenarios.registry import get_scenario, scenario_names
from repro.scenarios.replay import run_scenario
from repro.scenarios.scale import (
    SCALE_TIERS,
    run_soak,
    scale_tier_spec,
    soak_spec,
)


class TestScaleTierRegistry:
    def test_all_tiers_registered(self):
        for tier in SCALE_TIERS:
            assert f"scale_tier_{tier}" in scenario_names()

    def test_tier_specs_are_proportional_and_lean(self):
        for tier, (boxes, videos, rate, replicas) in SCALE_TIERS.items():
            spec = get_scenario(f"scale_tier_{tier}")
            assert spec.population.params["n"] == boxes
            assert spec.catalog.num_videos == videos
            assert spec.catalog.num_videos == boxes // 8
            assert spec.workload[0].params["arrival_rate"] == rate
            assert spec.allocation.replicas_per_stripe == replicas
            assert spec.trace_level == "lean"
            # Catalog stays under the d*n/k storage cap.
            storage_slots = boxes * int(3.0 * spec.catalog.num_stripes)
            needed = videos * spec.catalog.num_stripes * replicas
            assert needed <= storage_slots

    def test_unknown_tier_raises(self):
        with pytest.raises(KeyError, match="unknown scale tier"):
            scale_tier_spec("1M")

    def test_lean_trace_level_round_trips_through_spec_dict(self):
        spec = get_scenario("scale_tier_10k")
        payload = spec.to_dict()
        assert payload["trace_level"] == "lean"
        from repro.scenarios.spec import ScenarioSpec

        assert ScenarioSpec.from_dict(payload).trace_level == "lean"
        # Default-level specs omit the key, keeping old goldens comparable.
        assert "trace_level" not in get_scenario("steady_state").to_dict()


class TestScaleTierReplay:
    def test_10k_truncated_replay_is_bit_identical(self):
        first = run_scenario("scale_tier_10k", seed=5, num_rounds=6)
        second = run_scenario("scale_tier_10k", seed=5, num_rounds=6)
        assert first.digest == second.digest
        assert first.round_records == second.round_records

    def test_100k_brief_replay_is_bit_identical_and_feasible(self):
        first = run_scenario("scale_tier_100k", seed=5, num_rounds=2)
        second = run_scenario("scale_tier_100k", seed=5, num_rounds=2)
        assert first.digest == second.digest
        assert first.summary["infeasible_rounds"] == 0

    def test_500k_builds_and_steps_one_round(self):
        compiled = build_scenario(get_scenario("scale_tier_500k"), seed=5)
        feasible = compiled.simulator.step(compiled.workload)
        assert feasible
        stats = compiled.simulator.last_round_stats
        assert stats.active_requests > 1000

    def test_10k_round_is_feasible_at_steady_state(self):
        result = build_scenario(get_scenario("scale_tier_10k"), seed=3).run(20)
        assert result.metrics.infeasible_rounds == 0
        # Steady state reached: the active multiset saturates near
        # rate * stripes * duration.
        assert result.metrics.round_stats[-1].active_requests > 5000


class TestLeanTrace:
    def test_lean_trace_records_no_per_request_events(self):
        compiled = build_scenario(get_scenario("scale_tier_10k"), seed=2)
        compiled.run(3)
        assert len(compiled.simulator.trace) == 0

    def test_lean_and_full_traces_produce_identical_metrics(self):
        spec = get_scenario("scale_tier_10k").with_overrides(horizon=4)
        import dataclasses

        full_spec = dataclasses.replace(spec, trace_level="full", name="tmp_full")
        lean = run_scenario(spec, seed=9, num_rounds=4)
        full = run_scenario(full_spec, seed=9, num_rounds=4)
        assert lean.round_records == full.round_records
        assert full.summary["trace_events"] > 0
        assert lean.summary["trace_events"] == 0

    def test_lean_sessions_still_count_playback_starts(self):
        session = build_scenario(get_scenario("scale_tier_10k"), seed=2).session(
            horizon=6
        )
        reports = session.step_until(rounds=6)
        assert sum(r.playback_starts for r in reports) > 0

    def test_trace_level_validation(self):
        compiled = build_scenario(get_scenario("steady_state"), seed=0)
        with pytest.raises(ValueError, match="trace_level"):
            compiled.system.build_simulator(trace_level="verbose")


class TestSoakHarness:
    """The stress/soak subsystem, CI-sized (the CLI runs 500+ rounds).

    The 10k-box runs use the full-speed RSS probe; tracemalloc-exact
    watermarks (which slow the engine ~20x) are exercised at 2k boxes.
    """

    def test_churn_storm_soak_at_10k_boxes(self):
        report = run_soak(
            soak_spec(boxes=10_000, profile="churn_storm", horizon=500),
            num_rounds=500,
            seed=11,
            oracle_every=200,
            repeats=1,
            memory_budget_bytes_per_round=512 * 1024,
            memory_probe="rss",
        )
        assert report.infeasible_rounds < 50
        assert report.memory_ok, (
            f"per-round RSS growth {report.bytes_per_round / 1024:.1f} KiB "
            f"exceeds budget (watermarks: {report.memory_watermarks})"
        )
        assert report.digests_stable, "repeat run diverged from the first digest"
        assert report.oracle_rounds_checked >= 2
        assert not report.oracle_disagreements, "\n".join(report.oracle_disagreements)
        assert report.ok

    def test_flashcrowd_soak_at_10k_boxes(self):
        report = run_soak(
            soak_spec(boxes=10_000, profile="flashcrowd_spike", horizon=200),
            num_rounds=200,
            seed=11,
            repeats=1,
            memory_budget_bytes_per_round=512 * 1024,
            memory_probe="rss",
        )
        assert report.memory_ok
        assert report.digests_stable
        assert report.ok

    def test_tracemalloc_watermarks_are_bounded_at_2k_boxes(self):
        report = run_soak(
            soak_spec(boxes=2_000, profile="churn_storm", horizon=150),
            num_rounds=150,
            seed=7,
            repeats=0,
            memory_budget_bytes_per_round=128 * 1024,
            memory_probe="tracemalloc",
        )
        assert report.memory_ok, report.memory_watermarks
        # Watermarks were actually sampled across the run.
        assert len(report.memory_watermarks) >= 5

    def test_soak_memory_check_catches_unbounded_growth(self):
        # A full event trace allocates per-request records every round —
        # exactly the regression the tracemalloc watermark check exists
        # to catch, so it must fail under a tight budget.
        import dataclasses

        leaky = dataclasses.replace(
            soak_spec(boxes=2_000, profile="steady", horizon=80),
            trace_level="full",
            name="soak_leaky",
        )
        report = run_soak(
            leaky,
            num_rounds=80,
            seed=4,
            repeats=0,
            memory_budget_bytes_per_round=4 * 1024,
            memory_probe="tracemalloc",
        )
        assert not report.memory_ok
        assert not report.ok

    def test_soak_profiles_validated(self):
        with pytest.raises(ValueError, match="profile"):
            soak_spec(profile="meteor_strike")

    def test_memory_probe_validated(self):
        with pytest.raises(ValueError, match="memory_probe"):
            run_soak(
                soak_spec(boxes=1_000, profile="steady", horizon=10),
                num_rounds=2,
                memory_probe="crystal_ball",
            )

    def test_soak_report_describe_mentions_all_checks(self):
        report = run_soak(
            soak_spec(boxes=1_000, profile="steady", horizon=40),
            num_rounds=40,
            seed=1,
            repeats=1,
            memory_probe="rss",
        )
        text = report.describe()
        for needle in ("memory", "digest stability", "oracle"):
            assert needle in text


class TestSoakCli:
    def test_soak_command_passes_on_small_run(self, capsys):
        from repro.scenarios.cli import main

        code = main(
            [
                "soak",
                "--boxes", "1000",
                "--rounds", "50",
                "--profile", "steady",
                "--seed", "3",
                "--oracle-every", "25",
                "--memory-probe", "rss",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "memory" in out and "OK" in out

    def test_soak_command_fails_on_memory_regression(self, capsys):
        from repro.scenarios.cli import main

        # An absurdly tight budget must flip the exit code.
        code = main(
            [
                "soak",
                "--boxes", "1000",
                "--rounds", "50",
                "--profile", "steady",
                "--seed", "3",
                "--memory-budget-kib", "0.001",
            ]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().out
