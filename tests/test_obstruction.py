"""Tests for repro.core.obstruction (Lemmas 2-4, Equation 1)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import obstruction as ob
from repro.core import thresholds as th


class TestLemma2:
    def test_bound_formula(self):
        value = ob.lemma2_server_lower_bound(i=100, i1=2, c=10, mu=1.2)
        expected = (100 - (10 + 2 * 1.44 - 1) * 2) / (10 + 2 * (1.44 - 1))
        assert value == pytest.approx(expected)

    def test_bound_vacuous_when_many_distinct(self):
        assert ob.lemma2_server_lower_bound(i=5, i1=5, c=10, mu=1.5) < 0

    def test_i1_cannot_exceed_i(self):
        with pytest.raises(ValueError):
            ob.lemma2_server_lower_bound(i=2, i1=3, c=4, mu=1.2)

    def test_monotone_in_i(self):
        values = [ob.lemma2_server_lower_bound(i, 3, 8, 1.3) for i in (10, 50, 100)]
        assert values == sorted(values)


class TestLemma3:
    def test_simple_value(self):
        # (p/n)^{k i1} = (2/10)^{2*3}
        log_p = ob.lemma3_log_probability(p=2, n=10, k=2, i1=3)
        assert log_p == pytest.approx(6 * math.log(0.2))

    def test_p_zero(self):
        assert ob.lemma3_log_probability(0, 10, 2, 1) == -math.inf
        assert ob.lemma3_log_probability(0, 10, 2, 0) == 0.0

    def test_p_ge_n_is_probability_one(self):
        assert ob.lemma3_log_probability(10, 10, 2, 3) == 0.0
        assert ob.lemma3_log_probability(15, 10, 2, 3) == 0.0

    def test_monotone_in_p(self):
        values = [ob.lemma3_log_probability(p, 100, 3, 2) for p in (1, 5, 20, 99)]
        assert values == sorted(values)

    def test_empirical_agreement_with_permutation_allocation(self):
        # Empirically check Lemma 3: probability that the k replicas of one
        # stripe all fall into a fixed set of p boxes is ≤ (p/n)^k.
        from repro.core.allocation import random_permutation_allocation
        from repro.core.parameters import homogeneous_population
        from repro.core.video import Catalog

        n, p, k, trials = 12, 4, 2, 400
        catalog = Catalog(num_videos=6, num_stripes=2, duration=10)
        population = homogeneous_population(n, u=1.0, d=2.0)
        target_boxes = set(range(p))
        hits = 0
        for seed in range(trials):
            alloc = random_permutation_allocation(catalog, population, k, random_state=seed)
            holders = set(int(b) for b in alloc.replica_boxes_of_stripe(0))
            if holders <= target_boxes:
                hits += 1
        bound = (p / n) ** k
        # Allow generous sampling slack above the bound.
        assert hits / trials <= bound + 3 * math.sqrt(bound * (1 - bound) / trials) + 0.02


class TestLemma4:
    def test_zero_probability_when_few_distinct_stripes(self):
        assert ob.lemma4_log_probability(i=100, i1=1, n=50, c=10, u_prime=2.0, k=3, nu=0.05) == -math.inf

    def test_positive_log_capped_at_zero(self):
        value = ob.lemma4_log_probability(i=1, i1=1, n=50, c=10, u_prime=2.0, k=1, nu=0.001)
        assert value <= 0.0

    def test_probability_decreases_with_k(self):
        values = [
            ob.lemma4_log_probability(i=40, i1=20, n=50, c=10, u_prime=2.0, k=k, nu=0.01)
            for k in (1, 2, 4, 8)
        ]
        assert values == sorted(values, reverse=True)

    def test_i1_cannot_exceed_i(self):
        with pytest.raises(ValueError):
            ob.lemma4_log_probability(i=2, i1=3, n=10, c=4, u_prime=2.0, k=2, nu=0.1)


class TestMultisetCount:
    def test_small_exact_value(self):
        # M(3, 2) over 4 stripes: C(4,2)*C(2,1) = 12.
        assert math.exp(ob.log_multiset_count(i=3, i1=2, m=2, c=2)) == pytest.approx(12.0)

    def test_out_of_range_gives_zero_count(self):
        assert ob.log_multiset_count(i=2, i1=3, m=2, c=2) == -math.inf
        assert ob.log_multiset_count(i=2, i1=5, m=1, c=2) == -math.inf

    def test_i1_equals_i_is_binomial(self):
        # M(i, i) = C(mc, i)
        value = math.exp(ob.log_multiset_count(i=3, i1=3, m=3, c=2))
        assert value == pytest.approx(math.comb(6, 3))


class TestPhiAndFirstMoment:
    def setup_method(self):
        self.u, self.d, self.mu = 2.0, 4.0, 1.3
        self.c = th.recommended_stripes_homogeneous(self.u, self.mu)
        self.nu = th.nu_homogeneous(self.u, self.c, self.mu)
        self.u_prime = th.effective_upload(self.u, self.c)
        self.d_prime = th.d_prime(self.d, self.u)

    def test_phi_log_vectorized(self):
        i = np.array([1, 10, 100])
        values = ob.phi_log(i, n=200, c=self.c, u_prime=self.u_prime, d_prime=self.d_prime, k=50, nu=self.nu)
        assert values.shape == (3,)

    def test_phi_rejects_nonpositive_i(self):
        with pytest.raises(ValueError):
            ob.phi_log(np.array([0]), 10, self.c, self.u_prime, self.d_prime, 10, self.nu)

    def test_i_star_is_interior_minimizer(self):
        n, k = 200, 300
        istar = ob.i_star(n, self.c, self.u_prime, self.d_prime, k, self.nu)
        assert 1 < istar < n * self.c
        grid = np.arange(1, n * self.c + 1)
        phi = ob.phi_log(grid, n, self.c, self.u_prime, self.d_prime, k, self.nu)
        argmin = int(grid[np.argmin(phi)])
        assert abs(argmin - istar) <= max(3, 0.05 * istar)

    def test_i_star_requires_positive_kappa(self):
        with pytest.raises(ValueError):
            ob.i_star(100, self.c, self.u_prime, self.d_prime, k=1, nu=self.nu)

    def test_paper_bound_decreases_with_k(self):
        n = 100
        bounds = [
            ob.first_moment_bound_paper(n, self.c, self.u_prime, self.d_prime, k, self.nu)
            for k in (100, 250, 400, 600)
        ]
        assert bounds == sorted(bounds, reverse=True)
        assert bounds[-1] < 1e-3

    def test_paper_bound_decreases_with_n_at_theorem_k(self):
        k = th.replication_homogeneous(self.u, self.d, self.c, self.mu)
        b_small = ob.first_moment_bound_paper(50, self.c, self.u_prime, self.d_prime, k, self.nu)
        b_large = ob.first_moment_bound_paper(5000, self.c, self.u_prime, self.d_prime, k, self.nu)
        assert b_large <= b_small

    def test_theorem_k_gives_vanishing_bound(self):
        k = th.replication_homogeneous(self.u, self.d, self.c, self.mu)
        bound = ob.first_moment_bound_paper(10_000, self.c, self.u_prime, self.d_prime, k, self.nu)
        assert bound < 0.01

    def test_bound_clipped_to_one(self):
        bound = ob.first_moment_bound_paper(10, self.c, self.u_prime, self.d_prime, 3, self.nu)
        assert 0.0 <= bound <= 1.0

    def test_nu_validation(self):
        with pytest.raises(ValueError):
            ob.first_moment_bound_paper(10, self.c, self.u_prime, self.d_prime, 3, 1.5)

    def test_exact_bound_at_most_paper_bound(self):
        for n, k in ((30, 60), (100, 250)):
            m = max(int(self.d * n // k), 1)
            exact = ob.first_moment_bound_exact(n, self.c, m, k, self.u_prime, self.nu)
            paper = ob.first_moment_bound_paper(
                n, self.c, self.u_prime, self.d_prime, k, self.nu
            )
            assert exact <= paper + 1e-9

    def test_exact_bound_decreases_with_k(self):
        n = 60
        values = [
            ob.first_moment_bound_exact(n, self.c, 3, k, self.u_prime, self.nu)
            for k in (40, 80, 150)
        ]
        assert values == sorted(values, reverse=True)
        assert values[-1] < values[0]


class TestMinimumReplicationSearch:
    def test_found_k_achieves_target(self):
        u, d, mu, n = 2.0, 4.0, 1.3, 200
        c = th.recommended_stripes_homogeneous(u, mu)
        nu = th.nu_homogeneous(u, c, mu)
        u_prime = th.effective_upload(u, c)
        d_prime = th.d_prime(d, u)
        k = ob.minimum_replication_for_failure_probability(
            n, c, u_prime, d_prime, nu, target=0.05
        )
        assert ob.first_moment_bound_paper(n, c, u_prime, d_prime, k, nu) <= 0.05
        if k > 1:
            assert ob.first_moment_bound_paper(n, c, u_prime, d_prime, k - 1, nu) > 0.05

    def test_search_below_theorem_prescription(self):
        u, d, mu, n = 2.0, 4.0, 1.3, 1000
        c = th.recommended_stripes_homogeneous(u, mu)
        nu = th.nu_homogeneous(u, c, mu)
        k_search = ob.minimum_replication_for_failure_probability(
            n, c, th.effective_upload(u, c), th.d_prime(d, u), nu, target=1.0 / n
        )
        k_theorem = th.replication_homogeneous(u, d, c, mu)
        assert k_search <= k_theorem

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            ob.minimum_replication_for_failure_probability(10, 5, 2.0, 4.0, 0.05, target=0.0)

    def test_unreachable_target_raises(self):
        with pytest.raises(ValueError):
            ob.minimum_replication_for_failure_probability(
                10, 5, 2.0, 4.0, 0.05, target=1e-300, k_max=2
            )


class TestSummary:
    def test_summarize_bound_fields(self):
        u, d, mu, n = 2.0, 4.0, 1.3, 50
        c = th.recommended_stripes_homogeneous(u, mu)
        nu = th.nu_homogeneous(u, c, mu)
        summary = ob.summarize_bound(
            n=n,
            c=c,
            k=250,
            u_prime=th.effective_upload(u, c),
            d_prime=th.d_prime(d, u),
            nu=nu,
            m=2,
            include_exact=True,
        )
        desc = summary.describe()
        assert desc["paper_bound"] >= desc["exact_bound"] - 1e-12
        assert desc["kappa"] == pytest.approx(nu * 250 - 2)

    def test_exact_requires_catalog(self):
        with pytest.raises(ValueError):
            ob.summarize_bound(10, 5, 3, 2.0, 4.0, 0.05, include_exact=True)
