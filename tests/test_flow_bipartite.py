"""Tests for bipartite b-matching, Hall violations and expansion."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.flow.bipartite import (
    expansion_ratio,
    hall_violations,
    solve_b_matching,
    worst_expansion_subset,
)


class TestSolveBMatching:
    def test_perfect_matching(self):
        result = solve_b_matching(
            num_left=3,
            num_right=3,
            edges=[(0, 0), (1, 1), (2, 2), (0, 1)],
            right_capacities=[1, 1, 1],
        )
        assert result.feasible
        assert result.matched == 3
        assert result.deficient_left == ()
        assert result.unsatisfied_witness is None
        # Every left node is assigned a valid admissible right node.
        edges = {(0, 0), (1, 1), (2, 2), (0, 1)}
        for left, right in enumerate(result.assignment):
            assert (left, int(right)) in edges

    def test_right_capacity_allows_multiple_clients(self):
        result = solve_b_matching(
            num_left=3,
            num_right=1,
            edges=[(0, 0), (1, 0), (2, 0)],
            right_capacities=[3],
        )
        assert result.feasible
        assert result.matched == 3
        assert all(int(r) == 0 for r in result.assignment)

    def test_infeasible_by_capacity(self):
        result = solve_b_matching(
            num_left=3,
            num_right=1,
            edges=[(0, 0), (1, 0), (2, 0)],
            right_capacities=[2],
        )
        assert not result.feasible
        assert result.matched == 2
        assert len(result.deficient_left) == 1

    def test_infeasible_by_missing_edges_witness(self):
        # Left node 2 has no admissible server: it forms a Hall violation.
        result = solve_b_matching(
            num_left=3,
            num_right=2,
            edges=[(0, 0), (1, 1)],
            right_capacities=[1, 1],
        )
        assert not result.feasible
        assert result.unsatisfied_witness is not None
        assert 2 in result.unsatisfied_witness
        assert result.assignment[2] == -1

    def test_left_demands(self):
        result = solve_b_matching(
            num_left=2,
            num_right=2,
            edges=[(0, 0), (0, 1), (1, 1)],
            right_capacities=[1, 2],
            left_demands=[2, 1],
        )
        assert result.feasible
        assert result.matched == 3

    def test_empty_instance(self):
        result = solve_b_matching(0, 3, [], [1, 1, 1])
        assert result.feasible
        assert result.matched == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_b_matching(2, 2, [], [1])
        with pytest.raises(ValueError):
            solve_b_matching(2, 2, [], [1, 1], left_demands=[1])
        with pytest.raises(ValueError):
            solve_b_matching(1, 1, [(5, 0)], [1])

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 5_000))
    def test_matched_value_equals_hall_optimum_on_small_instances(self, seed):
        rng = np.random.default_rng(seed)
        num_left = int(rng.integers(1, 6))
        num_right = int(rng.integers(1, 6))
        caps = [int(rng.integers(0, 3)) for _ in range(num_right)]
        edges = [
            (i, j)
            for i in range(num_left)
            for j in range(num_right)
            if rng.random() < 0.5
        ]
        result = solve_b_matching(num_left, num_right, edges, caps)
        # Feasibility ⇔ no generalized Hall violation (deficiency form).
        neighbourhoods = [set(j for (i, j) in edges if i == left) for left in range(num_left)]
        violations = hall_violations(neighbourhoods, caps, demand_per_left=1.0)
        assert result.feasible == (len(violations) == 0)


class TestHallViolations:
    def test_no_violation_in_complete_graph(self):
        neighbourhoods = [{0, 1}, {0, 1}]
        assert hall_violations(neighbourhoods, [1.0, 1.0], 1.0) == []

    def test_violation_detected(self):
        neighbourhoods = [{0}, {0}]
        violations = hall_violations(neighbourhoods, [1.0], 1.0)
        assert (0, 1) in violations

    def test_weighted_capacity(self):
        # One server of weight 2 can cover both left nodes.
        neighbourhoods = [{0}, {0}]
        assert hall_violations(neighbourhoods, [2.0], 1.0) == []

    def test_fractional_demand(self):
        # Each request needs 1/c = 0.5: one unit server covers two requests.
        neighbourhoods = [{0}, {0}, {0}]
        violations = hall_violations(neighbourhoods, [1.0], 0.5)
        assert violations == [(0, 1, 2)]

    def test_max_subset_size_limits_search(self):
        neighbourhoods = [{0}, {0}, {0}]
        assert hall_violations(neighbourhoods, [1.0], 0.5, max_subset_size=2) == []

    def test_empty_neighbourhood_is_violation(self):
        violations = hall_violations([set()], [1.0], 1.0)
        assert violations == [(0,)]


class TestExpansion:
    def test_worst_expansion_subset(self):
        neighbourhoods = [{0, 1}, {1}, {1, 2}]
        subset, ratio = worst_expansion_subset(neighbourhoods)
        assert ratio == pytest.approx(1.0)
        assert 1 in subset

    def test_empty_input(self):
        subset, ratio = worst_expansion_subset([])
        assert subset == ()
        assert ratio == float("inf")

    def test_expansion_ratio_of_given_subsets(self):
        neighbourhoods = [{0, 1}, {1}, {2, 3}]
        ratios = expansion_ratio(neighbourhoods, [(0,), (0, 1), (0, 1, 2)])
        assert ratios[(0,)] == pytest.approx(2.0)
        assert ratios[(0, 1)] == pytest.approx(1.0)
        assert ratios[(0, 1, 2)] == pytest.approx(4 / 3)

    def test_expansion_ratio_rejects_empty_subset(self):
        with pytest.raises(ValueError):
            expansion_ratio([{0}], [()])

    def test_worst_subset_bounded_by_single_nodes(self):
        neighbourhoods = [{0, 1, 2}, {3}, {4, 5}]
        _, ratio = worst_expansion_subset(neighbourhoods)
        assert ratio <= min(len(nb) for nb in neighbourhoods)
