"""Data-at-rest integrity: checksummed store records and framed snapshots.

Damage is injected with :mod:`repro.faults.corrupt` (the same helpers the
CI chaos job uses) and must always surface as *typed* errors —
``StoreIntegrityError`` / ``SnapshotIntegrityError`` — never as raw
``JSONDecodeError`` or ``UnpicklingError`` on attacker-shaped bytes.  The
healing loop (``verify`` → ``repair`` → ``resume``) re-executes exactly
the damaged cells.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.api import SessionSnapshot, SnapshotFormatError, SnapshotIntegrityError
from repro.api.registry import register_component
from repro.faults.corrupt import corrupt_store_record, flip_byte, truncate_file
from repro.orchestrate.runner import run_campaign
from repro.orchestrate.spec import CampaignSpec, CellSpec
from repro.orchestrate.store import ResultsStore, StoreIntegrityError
from repro.scenarios.build import build_scenario
from repro.scenarios.registry import get_scenario

TRUNCATED_FIXTURE = Path(__file__).parent / "fixtures" / "session_snapshot_truncated.bin"

register_component(
    "experiment",
    "unit_integrity_echo",
    lambda params: [{"x": params["x"], "y": params["x"] * 10}],
    "test helper: echoes its parameter",
    overwrite=True,
)

SWEEP = CampaignSpec(
    name="unit_integrity_sweep",
    description="integrity-test sweep",
    runner="unit_integrity_echo",
    grid={"x": (1, 2, 3)},
)


@pytest.fixture
def store(tmp_path):
    return ResultsStore(tmp_path / "store")


def _one_record(store):
    cell = CellSpec(runner="demo", params={"u": 2.0})
    key = store.put(cell, rows=[{"u": 2.0, "feasible": True}])
    return cell, key


# ---------------------------------------------------------------------- #
# Store records
# ---------------------------------------------------------------------- #
class TestStoreIntegrity:
    def test_put_embeds_checksum_and_get_verifies(self, store):
        _, key = _one_record(store)
        record = store.get(key)
        assert len(record["sha256"]) == 64
        assert store.verify() == []

    def test_torn_record_raises_typed_error(self, store):
        _, key = _one_record(store)
        corrupt_store_record(store, key, mode="truncate")
        with pytest.raises(StoreIntegrityError, match="corrupt record"):
            store.get(key)
        damage = store.verify()
        assert [d.key for d in damage] == [key]
        assert "unparseable JSON" in damage[0].reason

    def test_flipped_byte_raises_checksum_mismatch(self, store):
        _, key = _one_record(store)
        corrupt_store_record(store, key, mode="flip")
        with pytest.raises(StoreIntegrityError):
            store.get(key)
        damage = store.verify()
        assert len(damage) == 1
        assert damage[0].key == key

    def test_semantic_tamper_with_valid_json_is_caught(self, store):
        # Flip a value, keep the JSON parseable: only the checksum can
        # tell, and it must.
        _, key = _one_record(store)
        path = store._object_path(key)
        path.write_text(path.read_text().replace("true", "false"))
        assert [d.reason for d in store.verify()] == ["checksum mismatch"]
        with pytest.raises(StoreIntegrityError, match="checksum mismatch"):
            store.get(key)

    def test_legacy_record_without_checksum_loads_but_verify_flags_it(self, store):
        import json

        _, key = _one_record(store)
        path = store._object_path(key)
        record = json.loads(path.read_text())
        del record["sha256"]
        path.write_text(json.dumps(record))
        assert store.get(key)["rows"]  # legacy read stays permissive
        assert [d.reason for d in store.verify()] == ["missing checksum"]

    def test_miskeyed_record_is_flagged(self, store):
        cell_a = CellSpec(runner="demo", params={"u": 1.0})
        cell_b = CellSpec(runner="demo", params={"u": 2.0})
        store.put(cell_a, rows=[{"u": 1.0}])
        key_b = store.put(cell_b, rows=[{"u": 2.0}])
        # A's bytes land under B's path: checksum is fine, the key is not.
        store._object_path(key_b).write_bytes(
            store._object_path(cell_a.key).read_bytes()
        )
        assert [d.reason for d in store.verify()] == ["key mismatch"]
        with pytest.raises(StoreIntegrityError, match="claims key"):
            store.get(key_b)

    def test_repair_removes_only_damaged_records(self, store):
        _, key = _one_record(store)
        other = store.put(CellSpec(runner="demo", params={"u": 9.0}), rows=[{"u": 9.0}])
        corrupt_store_record(store, key, mode="flip")
        assert store.repair() == [key]
        assert not store.has(key)
        assert store.has(other)
        assert store.verify() == []

    def test_repair_on_healthy_store_is_a_no_op(self, store):
        _one_record(store)
        assert store.repair() == []


class TestVerifyRepairResumeLoop:
    def test_resume_re_executes_exactly_the_damaged_cell(self, store):
        first = run_campaign(SWEEP, store)
        assert first.complete and len(first.executed) == 3
        damaged_key = first.cell_keys[1]
        corrupt_store_record(store, damaged_key, mode="truncate")

        assert [d.key for d in store.verify()] == [damaged_key]
        assert store.repair() == [damaged_key]

        healed = run_campaign(SWEEP, store)  # what the CLI `resume` runs
        assert healed.complete
        assert healed.executed == [damaged_key]
        assert set(healed.reused) == set(first.cell_keys) - {damaged_key}
        assert store.verify() == []

    def test_healed_record_is_byte_identical_to_the_original(self, store):
        run_campaign(SWEEP, store)
        key = SWEEP.cell_keys()[0]
        original = store._object_path(key).read_bytes()
        corrupt_store_record(store, key, mode="flip")
        store.repair()
        run_campaign(SWEEP, store)
        assert store._object_path(key).read_bytes() == original


# ---------------------------------------------------------------------- #
# Corruption helpers
# ---------------------------------------------------------------------- #
class TestCorruptHelpers:
    def test_truncate_and_flip_validate_inputs(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"abcdef")
        truncate_file(path, keep_bytes=2)
        assert path.read_bytes() == b"ab"
        with pytest.raises(ValueError, match="keep_bytes"):
            truncate_file(path, keep_bytes=-1)
        flip_byte(path, offset=0)
        assert path.read_bytes()[0] == ord("a") ^ 0xFF
        with pytest.raises(ValueError, match="beyond"):
            flip_byte(path, offset=99)
        path.write_bytes(b"")
        with pytest.raises(ValueError, match="empty"):
            flip_byte(path)

    def test_corrupt_store_record_validates(self, store):
        _, key = _one_record(store)
        with pytest.raises(ValueError, match="mode"):
            corrupt_store_record(store, key, mode="shred")
        missing = "0" * 64
        with pytest.raises(FileNotFoundError):
            corrupt_store_record(store, missing)


# ---------------------------------------------------------------------- #
# Snapshot checkpoints
# ---------------------------------------------------------------------- #
def _checkpoint(tmp_path):
    session = build_scenario(get_scenario("steady_state"), seed=1).session()
    session.step_until(rounds=2)
    return session.snapshot().to_file(tmp_path / "checkpoint.snap")


class TestSnapshotIntegrity:
    def test_committed_truncated_fixture_raises_integrity_error(self):
        # A torn checkpoint frozen into the repo: the framed header is
        # intact but the payload is cut short.
        with pytest.raises(SnapshotIntegrityError, match="truncated"):
            SessionSnapshot.from_file(TRUNCATED_FIXTURE)

    def test_truncated_header_detected(self, tmp_path):
        path = _checkpoint(tmp_path)
        truncate_file(path, keep_bytes=20)  # inside the 48-byte header
        with pytest.raises(SnapshotIntegrityError, match="incomplete header"):
            SessionSnapshot.from_file(path)

    def test_flipped_payload_byte_fails_checksum(self, tmp_path):
        path = _checkpoint(tmp_path)
        flip_byte(path)  # middle of the pickled payload
        with pytest.raises(SnapshotIntegrityError, match="checksum mismatch"):
            SessionSnapshot.from_file(path)

    def test_non_snapshot_file_raises_format_error(self, tmp_path):
        path = tmp_path / "garbage.snap"
        path.write_bytes(b"this was never a snapshot")
        with pytest.raises(SnapshotFormatError, match="not a readable snapshot"):
            SessionSnapshot.from_file(path)

    def test_intact_checkpoint_round_trips(self, tmp_path):
        path = _checkpoint(tmp_path)
        snapshot = SessionSnapshot.from_file(path)
        assert snapshot.rounds_completed == 2
        assert snapshot.payload_sha256


# ---------------------------------------------------------------------- #
# Scenario smoke CLI: typed exit codes
# ---------------------------------------------------------------------- #
class TestScenarioSmokeExitCodes:
    def test_unknown_scenario_is_a_usage_error(self, capsys):
        from repro.scenarios.cli import main

        assert main(["smoke", "no_such_scenario", "--rounds", "1"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_healthy_scenario_exits_zero(self, capsys):
        from repro.scenarios.cli import main

        assert main(["smoke", "steady_state", "--rounds", "1"]) == 0
        assert "steady_state" in capsys.readouterr().out

    def test_expected_failure_counts_and_exits_one(self, monkeypatch, capsys):
        from repro.scenarios import cli

        def infeasible(*args, **kwargs):
            raise ValueError("deliberately infeasible build")

        monkeypatch.setattr(cli, "run_scenario", infeasible)
        assert cli.main(["smoke", "steady_state", "--rounds", "1"]) == 1
        assert "ERROR ValueError" in capsys.readouterr().out

    def test_programming_errors_propagate_with_traceback(self, monkeypatch):
        from repro.scenarios import cli

        def broken(*args, **kwargs):
            raise TypeError("a real bug, not an expected failure")

        monkeypatch.setattr(cli, "run_scenario", broken)
        with pytest.raises(TypeError, match="real bug"):
            cli.main(["smoke", "steady_state", "--rounds", "1"])
