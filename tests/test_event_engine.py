"""The event-driven continuous-time engine mode (:mod:`repro.events`).

The load-bearing property is *round parity*: the event engine inherits
the round engine's admission/matching/playback state machine, so binning
its continuous event trace by round must reproduce the round engine's
records bit for bit — what it adds is the per-request latency metrics
the synchronous clock cannot express.  The tests here pin the queue's
deterministic ordering, engine parity across scenarios (hypothesis-swept,
including a chaos scenario), the latency percentiles' presence and
ranges, the facade/serialization plumbing, and snapshot/restore.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api import VodSession, VodSystem
from repro.api.errors import ApiError
from repro.api.session import RoundReport
from repro.events import (
    Arrival,
    ChurnTransition,
    EventDrivenVodSimulator,
    EventQueue,
    Expiry,
    FaultInjection,
    PlaybackStart,
    crosscheck_scenario,
)
from repro.scenarios.build import build_scenario
from repro.scenarios.registry import get_scenario
from repro.scenarios.replay import run_scenario

SEED = 20260808

#: The cross-check sweep: calibrated baseline, a churn regime, and one
#: chaos_* scenario whose fault driver mutates the engine mid-run.
CROSSCHECK_SCENARIOS = ["steady_state", "churn_storm", "chaos_box_crash"]


# ---------------------------------------------------------------------- #
# The queue
# ---------------------------------------------------------------------- #
class TestEventQueue:
    def test_orders_by_time_then_priority_then_push_order(self):
        queue = EventQueue()
        arrival = Arrival(time=3.0, round=3, box_id=1, video_id=0, accepted=True)
        expiry = Expiry(time=3.0, round=3, box_id=2, demand_index=0)
        churn = ChurnTransition(time=3.0, round=3, box_id=3, online=False)
        fault = FaultInjection(time=3.0, round=3, action="set_budget", box_id=-1)
        play = PlaybackStart(time=3.0, round=2, demand_index=0, startup_delay=1.5)
        early = Arrival(time=2.5, round=2, box_id=4, video_id=1, accepted=False)
        for event in (arrival, play, fault, churn, expiry, early):
            queue.push(event)
        drained = list(queue.drain_until(4.0))
        # Time first, then the fixed kind rank: expiry, churn, fault,
        # arrival, playback.
        assert drained == [early, expiry, churn, fault, arrival, play]

    def test_equal_events_drain_in_push_order(self):
        queue = EventQueue()
        a = Arrival(time=1.0, round=1, box_id=1, video_id=0, accepted=True)
        b = Arrival(time=1.0, round=1, box_id=2, video_id=0, accepted=True)
        queue.push(a)
        queue.push(b)
        assert list(queue.drain_until(2.0)) == [a, b]

    def test_drain_until_is_exclusive(self):
        """Boundary-stamped events belong to the round starting there."""
        queue = EventQueue()
        queue.push(Expiry(time=5.0, round=5, box_id=0, demand_index=0))
        assert list(queue.drain_until(5.0)) == []
        assert len(queue) == 1
        assert queue.peek_time() == 5.0
        assert len(list(queue.drain_until(6.0))) == 1

    def test_same_pushes_same_drain_order(self):
        def build():
            queue = EventQueue()
            for k in range(20):
                queue.push(
                    Arrival(
                        time=float(k % 4), round=k % 4, box_id=k,
                        video_id=0, accepted=True,
                    )
                )
                queue.push(Expiry(time=float(k % 4), round=k % 4, box_id=k,
                                  demand_index=k))
            return list(queue.drain_until(10.0))

        assert build() == build()


# ---------------------------------------------------------------------- #
# Engine parity and the latency metrics
# ---------------------------------------------------------------------- #
class TestEngineParity:
    def test_round_records_identical_across_engines(self):
        round_run = run_scenario("steady_state", seed=SEED, num_rounds=10)
        event_run = run_scenario(
            "steady_state", seed=SEED, num_rounds=10, engine="event"
        )
        assert event_run.round_records == round_run.round_records
        # The event summary is the round summary plus the latency keys.
        extras = set(event_run.summary) - set(round_run.summary)
        assert extras == {
            "admission_latency_p50",
            "admission_latency_p99",
            "startup_delay_p50",
            "startup_delay_p99",
        }

    def test_latency_percentiles_in_continuous_ranges(self):
        """Admission latencies lie in (0, 1]; the paper's 3-round startup
        bound shows up as continuous delays in (1, 2]."""
        run = run_scenario("event_steady_state", seed=SEED, num_rounds=12)
        summary = run.summary
        assert 0.0 < summary["admission_latency_p50"] <= 1.0
        assert 0.0 < summary["admission_latency_p99"] <= 1.0
        assert 1.0 < summary["startup_delay_p50"] <= 2.0
        assert 1.0 < summary["startup_delay_p99"] <= 2.0
        assert summary["admission_latency_p50"] <= summary["admission_latency_p99"]

    def test_event_run_is_deterministic(self):
        a = run_scenario("event_steady_state", seed=SEED, num_rounds=8)
        b = run_scenario("event_steady_state", seed=SEED, num_rounds=8)
        assert a.digest == b.digest
        assert a.summary == b.summary

    def test_round_binned_trace_matches_reports(self):
        report = crosscheck_scenario("steady_state", seed=SEED, rounds=10)
        assert report.matched, "\n".join(report.mismatches)
        assert len(report.round_event_counts) == 10
        assert report.admission_latency_p99 is not None

    @pytest.mark.parametrize("name", CROSSCHECK_SCENARIOS)
    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=2**20))
    def test_binned_event_trace_reproduces_round_engine(self, name, seed):
        """Property (satellite): binning the event trace per round equals
        the round engine's accept/playback counts for any seed, including
        through a chaos scenario's fault windows."""
        report = crosscheck_scenario(name, seed=seed, rounds=8)
        assert report.matched, "\n".join(report.mismatches)


# ---------------------------------------------------------------------- #
# Facade and serialization plumbing
# ---------------------------------------------------------------------- #
def _small_system():
    return VodSystem.configure(
        catalog={"num_videos": 8, "num_stripes": 4, "duration": 12},
        population=("homogeneous", {"n": 24, "u": 2.0, "d": 3.0}),
        mu=1.5,
    )


class TestFacade:
    def test_build_simulator_event_mode(self):
        system = _small_system()
        system.allocate("permutation", replicas_per_stripe=4, seed=0)
        engine = system.build_simulator(engine="event", event_random_state=7)
        assert isinstance(engine, EventDrivenVodSimulator)

    def test_unknown_engine_rejected(self):
        system = _small_system()
        system.allocate("permutation", replicas_per_stripe=4, seed=0)
        with pytest.raises(ApiError, match="engine"):
            system.build_simulator(engine="continuous")

    def test_event_engine_rejects_sharding(self):
        system = _small_system()
        system.allocate("permutation", replicas_per_stripe=4, seed=0)
        with pytest.raises(ApiError, match="shard"):
            system.build_simulator(engine="event", n_shards=2)

    def test_session_reports_carry_latency_fields(self):
        spec = get_scenario("event_steady_state")
        session = build_scenario(spec, seed=SEED).session(horizon=8)
        reports = session.step_until(rounds=8)
        with_latency = [r for r in reports if r.admission_latency_p50 is not None]
        assert with_latency, "no round reported admission latency"
        report = with_latency[-1]
        payload = report.to_dict()
        assert RoundReport.from_dict(payload) == report
        assert 0.0 < payload["admission_latency_p50"] <= 1.0

    def test_round_engine_reports_omit_latency_keys(self):
        spec = get_scenario("steady_state")
        session = build_scenario(spec, seed=SEED).session(horizon=4)
        report = session.step_until(rounds=4)[-1]
        payload = report.to_dict()
        assert "admission_latency_p50" not in payload
        assert RoundReport.from_dict(payload) == report

    def test_snapshot_restore_replays_identically(self):
        spec = get_scenario("event_steady_state")
        session = build_scenario(spec, seed=SEED).session(horizon=12)
        session.step_until(rounds=6)
        restored = VodSession.restore(session.snapshot())
        tail_a = session.step_until(round=12)
        tail_b = restored.step_until(round=12)
        assert [r.to_dict() for r in tail_a] == [r.to_dict() for r in tail_b]
        assert session.digest() == restored.digest()


# ---------------------------------------------------------------------- #
# The event trace itself
# ---------------------------------------------------------------------- #
class TestEventTrace:
    def test_full_trace_records_ordered_events(self):
        spec = get_scenario("event_steady_state")  # trace_level defaults to full
        compiled = build_scenario(spec, seed=SEED)
        compiled.run(8)
        events = compiled.simulator.processed_events
        assert events, "full trace recorded no events"
        assert any(isinstance(e, Arrival) for e in events)
        assert any(isinstance(e, PlaybackStart) for e in events)
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_lean_trace_keeps_no_raw_events(self):
        import dataclasses

        spec = dataclasses.replace(
            get_scenario("event_steady_state"), trace_level="lean"
        )
        compiled = build_scenario(spec, seed=SEED)
        compiled.run(8)
        simulator = compiled.simulator
        assert simulator.processed_events == ()
        assert len(simulator.round_event_counts) == 8

    def test_expiries_fire_after_duration(self):
        spec = get_scenario("event_steady_state")
        compiled = build_scenario(spec, seed=SEED)
        duration = compiled.catalog.duration
        rounds = duration + 4
        compiled = build_scenario(spec, seed=SEED, min_horizon=rounds)
        compiled.run(rounds)
        counts = compiled.simulator.round_event_counts
        assert all(b["expirations"] == 0 for b in counts[:duration])
        assert any(b["expirations"] > 0 for b in counts[duration:])
