"""Tests for the FlowNetwork data structure and the bipartite builder."""

import pytest

from repro.flow.network import FlowNetwork, build_bipartite_network
from repro.flow.dinic import dinic_max_flow


class TestFlowNetworkConstruction:
    def test_add_edge_creates_residual_pair(self):
        net = FlowNetwork(2)
        edge_id = net.add_edge(0, 1, 7)
        assert edge_id == 0
        assert net.num_edges == 1
        forward = net.edge(0)
        backward = net.edge(1)
        assert (forward.source, forward.target, forward.capacity) == (0, 1, 7)
        assert (backward.source, backward.target, backward.capacity) == (1, 0, 0)

    def test_add_node(self):
        net = FlowNetwork(1)
        new = net.add_node()
        assert new == 1
        assert net.num_nodes == 2
        net.add_edge(0, 1, 3)

    def test_invalid_edges(self):
        net = FlowNetwork(2)
        with pytest.raises(ValueError):
            net.add_edge(0, 5, 1)
        with pytest.raises(ValueError):
            net.add_edge(0, 1, -1)
        with pytest.raises(TypeError):
            net.add_edge(0, 1, 1.5)

    def test_invalid_num_nodes(self):
        with pytest.raises(ValueError):
            FlowNetwork(-1)

    def test_edge_out_of_range(self):
        net = FlowNetwork(2)
        with pytest.raises(ValueError):
            net.edge(0)


class TestResidualOperations:
    def test_push_updates_residuals(self):
        net = FlowNetwork(2)
        e = net.add_edge(0, 1, 5)
        net.push(e, 3)
        assert net.residual(e) == 2
        assert net.residual(e ^ 1) == 3
        assert net.flow_on(e) == 3

    def test_push_too_much_raises(self):
        net = FlowNetwork(2)
        e = net.add_edge(0, 1, 5)
        with pytest.raises(ValueError):
            net.push(e, 6)

    def test_push_negative_raises(self):
        net = FlowNetwork(2)
        e = net.add_edge(0, 1, 5)
        with pytest.raises(ValueError):
            net.push(e, -1)

    def test_reset_flow(self):
        net = FlowNetwork(2)
        e = net.add_edge(0, 1, 5)
        net.push(e, 5)
        net.reset_flow()
        assert net.flow_on(e) == 0
        assert net.residual(e) == 5

    def test_flow_value_counts_net_outflow(self):
        net = FlowNetwork(3)
        e1 = net.add_edge(0, 1, 5)
        e2 = net.add_edge(1, 2, 5)
        net.push(e1, 4)
        net.push(e2, 4)
        assert net.flow_value(0) == 4
        assert net.check_conservation(0, 2)

    def test_conservation_detects_imbalance(self):
        net = FlowNetwork(3)
        e1 = net.add_edge(0, 1, 5)
        net.add_edge(1, 2, 5)
        net.push(e1, 4)  # flow enters node 1 but never leaves
        assert not net.check_conservation(0, 2)

    def test_copy_is_independent(self):
        net = FlowNetwork(2)
        e = net.add_edge(0, 1, 5)
        clone = net.copy()
        net.push(e, 5)
        assert clone.flow_on(e) == 0
        assert clone.num_edges == 1

    def test_forward_edges_iteration(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 2)
        net.add_edge(1, 2, 3)
        caps = [edge.capacity for edge in net.forward_edges()]
        assert caps == [2, 3]

    def test_residual_capacity_property(self):
        net = FlowNetwork(2)
        e = net.add_edge(0, 1, 5)
        net.push(e, 2)
        assert net.edge(e).residual_capacity == 3


class TestBipartiteBuilder:
    def test_layout_and_flow(self):
        net, source, sink = build_bipartite_network(
            num_left=2,
            num_right=2,
            edges=[(0, 0), (0, 1), (1, 1)],
            left_capacities=[1, 1],
            right_capacities=[1, 1],
        )
        assert source == 0
        assert sink == 5
        assert dinic_max_flow(net, source, sink) == 2

    def test_capacity_length_mismatch(self):
        with pytest.raises(ValueError):
            build_bipartite_network(2, 2, [], [1], [1, 1])
        with pytest.raises(ValueError):
            build_bipartite_network(2, 2, [], [1, 1], [1])

    def test_edge_out_of_range(self):
        with pytest.raises(ValueError):
            build_bipartite_network(2, 2, [(2, 0)], [1, 1], [1, 1])

    def test_right_capacity_limits_matching(self):
        net, source, sink = build_bipartite_network(
            num_left=3,
            num_right=1,
            edges=[(0, 0), (1, 0), (2, 0)],
            left_capacities=[1, 1, 1],
            right_capacities=[2],
        )
        assert dinic_max_flow(net, source, sink) == 2
