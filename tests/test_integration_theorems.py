"""End-to-end integration tests validating the paper's claims on small systems.

These tests are the executable counterparts of EXPERIMENTS.md: each one
exercises a full pipeline (population → allocation → workload → simulator)
and asserts the qualitative claim of the corresponding theorem/lemma.
"""

import numpy as np
import pytest

from repro.analysis.montecarlo import estimate_static_obstruction_probability
from repro.baselines.full_replication import (
    full_replication_allocation,
    max_catalog_full_replication,
)
from repro.baselines.sourcing_only import SourcingOnlyPossessionIndex
from repro.core.allocation import random_independent_allocation, random_permutation_allocation
from repro.core.heterogeneous import RelayedPreloadingScheduler, compute_compensation_plan
from repro.core.negative import build_negative_witness
from repro.core.parameters import BoxPopulation, homogeneous_population
from repro.core.thresholds import design_homogeneous
from repro.core.video import Catalog
from repro.sim.engine import VodSimulator
from repro.workloads.adversarial import LeastReplicatedAdversary, MissingVideoAdversary
from repro.workloads.flashcrowd import FlashCrowdWorkload, StaggeredFlashCrowdWorkload
from repro.workloads.popularity import ZipfDemandWorkload
from repro.workloads.sequential import SequentialViewingWorkload


class TestThresholdSeparation:
    """The headline claim: u < 1 collapses, u > 1 scales."""

    def test_below_threshold_adversary_wins(self):
        for seed in range(3):
            catalog = Catalog(num_videos=30, num_stripes=4, duration=25)
            population = homogeneous_population(48, u=0.7, d=2.5)
            allocation = random_permutation_allocation(catalog, population, 4, random_state=seed)
            witness = build_negative_witness(allocation)
            assert witness.infeasible
            sim = VodSimulator(allocation, mu=2.0, stop_on_infeasible=True)
            result = sim.run(MissingVideoAdversary(random_state=seed), num_rounds=6)
            assert not result.feasible

    def test_above_threshold_same_attack_is_absorbed(self):
        for seed in range(3):
            catalog = Catalog(num_videos=30, num_stripes=4, duration=25)
            population = homogeneous_population(48, u=2.0, d=2.5)
            allocation = random_permutation_allocation(catalog, population, 4, random_state=seed)
            sim = VodSimulator(allocation, mu=2.0)
            # Throttle the adversary so that swarm growth stays legal; the
            # same missing-video strategy is then absorbed by u > 1.
            adversary = MissingVideoAdversary(
                respect_growth=True, mu=2.0, max_demands_per_round=12, random_state=seed
            )
            result = sim.run(adversary, num_rounds=8)
            assert result.feasible

    def test_catalog_well_beyond_full_replication_cap(self):
        # Full replication caps the catalog at d·c = 10; the random-stripe
        # system serves a catalog 3x larger under adversarial demand.
        d, c = 2.5, 4
        cap = max_catalog_full_replication(d, c)
        catalog = Catalog(num_videos=3 * cap, num_stripes=c, duration=25)
        population = homogeneous_population(48, u=2.0, d=d)
        allocation = random_permutation_allocation(catalog, population, 3, random_state=1)
        sim = VodSimulator(allocation, mu=1.5)
        result = sim.run(
            LeastReplicatedAdversary(mu=1.5, num_target_videos=2, random_state=1),
            num_rounds=8,
        )
        assert result.feasible


class TestTheorem1Machinery:
    def test_theorem_design_bound_vanishes_with_n(self):
        design_small = design_homogeneous(n=100, u=2.0, d=4.0, mu=1.3)
        design_large = design_homogeneous(n=100_000, u=2.0, d=4.0, mu=1.3)
        # Same (c, k) prescription, catalog linear in n.
        assert design_small.c == design_large.c
        assert design_small.k == design_large.k
        assert design_large.catalog_size >= 999 * design_small.catalog_size // 1000 * 100

    def test_higher_replication_reduces_cold_start_failures(self):
        weak = estimate_static_obstruction_probability(
            n=30, u=1.2, d=3.0, c=3, k=1, num_cold_videos=[10, 15], trials=20, random_state=0
        )
        strong = estimate_static_obstruction_probability(
            n=30, u=1.2, d=3.0, c=3, k=5, num_cold_videos=[10, 15], trials=20, random_state=0
        )
        assert strong.failure_probability <= weak.failure_probability

    def test_permutation_and_independent_allocations_both_serve(self):
        catalog = Catalog(num_videos=20, num_stripes=4, duration=25)
        population = homogeneous_population(40, u=2.0, d=4.0)
        for scheme_fn in (random_permutation_allocation, random_independent_allocation):
            allocation = scheme_fn(catalog, population, 4, random_state=2)
            sim = VodSimulator(allocation, mu=1.5)
            result = sim.run(FlashCrowdWorkload(mu=1.5, random_state=2), num_rounds=8)
            assert result.feasible, scheme_fn.__name__

    def test_permutation_allocation_is_better_balanced_than_independent(self):
        catalog = Catalog(num_videos=20, num_stripes=4, duration=25)
        population = homogeneous_population(40, u=2.0, d=4.0)
        perm_imbalance = []
        ind_imbalance = []
        for seed in range(5):
            perm = random_permutation_allocation(catalog, population, 4, random_state=seed)
            ind = random_independent_allocation(
                catalog, population, 4, random_state=seed, on_full="ignore"
            )
            perm_imbalance.append(perm.load_imbalance())
            ind_imbalance.append(ind.load_imbalance())
        assert np.mean(perm_imbalance) <= np.mean(ind_imbalance)

    def test_multiple_overlapping_flash_crowds(self):
        catalog = Catalog(num_videos=25, num_stripes=5, duration=30)
        population = homogeneous_population(75, u=2.0, d=4.0)
        allocation = random_permutation_allocation(catalog, population, 5, random_state=3)
        sim = VodSimulator(allocation, mu=1.5)
        workload = StaggeredFlashCrowdWorkload(
            mu=1.5, target_videos=(0, 7, 13), start_times=(0, 2, 4), random_state=3
        )
        result = sim.run(workload, num_rounds=10)
        assert result.feasible
        assert result.metrics.swarm_growth_violations == 0

    def test_sequential_viewing_cache_straddles_two_videos(self):
        # Short videos so boxes finish and immediately start the next one;
        # Lemma 2 allows a box to belong to two swarms within a window T.
        catalog = Catalog(num_videos=10, num_stripes=3, duration=6)
        population = homogeneous_population(30, u=2.0, d=3.0)
        allocation = random_permutation_allocation(catalog, population, 4, random_state=4)
        sim = VodSimulator(allocation, mu=2.0)
        workload = SequentialViewingWorkload(boxes=range(10), random_state=4)
        result = sim.run(workload, num_rounds=20)
        assert result.feasible
        # Boxes must have started several videos over 20 rounds.
        starts_per_box = {}
        for event in result.trace.playback_starts():
            starts_per_box[event.box_id] = starts_per_box.get(event.box_id, 0) + 1
        assert max(starts_per_box.values()) >= 2


class TestSwarmingVsSourcing:
    def test_sourcing_only_fails_where_swarming_succeeds(self):
        # One video under maximal flash crowd: the static holders alone run
        # out of upload, the swarming system keeps up (this is exactly the
        # gap between the paper and its sourcing-only predecessor [3]).
        catalog = Catalog(num_videos=8, num_stripes=2, duration=40)
        population = homogeneous_population(40, u=1.5, d=1.0)
        allocation = random_permutation_allocation(catalog, population, 2, random_state=6)
        workload_seed = 9

        swarming_sim = VodSimulator(allocation, mu=2.0)
        swarming = swarming_sim.run(
            FlashCrowdWorkload(mu=2.0, target_videos=(0,), random_state=workload_seed),
            num_rounds=9,
        )
        assert swarming.feasible

        sourcing_sim = VodSimulator(allocation, mu=2.0)
        # Swap in the sourcing-only possession index (no cache help).
        sourcing_sim._possession = SourcingOnlyPossessionIndex(
            allocation, cache_window=catalog.duration
        )
        sourcing = sourcing_sim.run(
            FlashCrowdWorkload(mu=2.0, target_videos=(0,), random_state=workload_seed),
            num_rounds=9,
        )
        assert not sourcing.feasible


class TestTheorem2Heterogeneous:
    def build_population(self):
        uploads = [4.0] * 12 + [0.5] * 12
        storages = [u * 2.5 for u in uploads]
        return BoxPopulation(uploads, storages)

    def test_balanced_population_with_relays_serves_mixed_demand(self):
        population = self.build_population()
        catalog = Catalog(num_videos=12, num_stripes=8, duration=40)
        allocation = random_permutation_allocation(catalog, population, 4, random_state=7)
        plan = compute_compensation_plan(population, u_star=1.5)
        scheduler = RelayedPreloadingScheduler(catalog, population, plan, mu=1.1)
        sim = VodSimulator(allocation, mu=1.1, scheduler=scheduler, compensation_plan=plan)
        result = sim.run(ZipfDemandWorkload(arrival_rate=3, random_state=7), num_rounds=14)
        assert result.feasible
        assert result.metrics.total_demands > 5

    def test_poor_boxes_without_compensation_struggle(self):
        # The same population, but poor boxes use the plain homogeneous
        # strategy (no relays) and all poor boxes hit one cold video.
        population = BoxPopulation([0.5] * 30 + [4.0] * 2, [1.5] * 30 + [10.0] * 2)
        catalog = Catalog(num_videos=10, num_stripes=4, duration=40)
        allocation = random_permutation_allocation(catalog, population, 2, random_state=8)
        sim = VodSimulator(allocation, mu=2.0, stop_on_infeasible=True)
        workload = FlashCrowdWorkload(mu=2.0, target_videos=(0,), random_state=8)
        result = sim.run(workload, num_rounds=10)
        # Aggregate upload (0.5*30 + 8 = 23) < 30 potential viewers: the
        # crowd eventually outgrows the system.
        assert not result.feasible
