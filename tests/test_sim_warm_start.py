"""Warm-started incremental matching vs cold per-round solves."""

import numpy as np
import pytest

from repro.core.allocation import random_permutation_allocation
from repro.core.matching import ConnectionMatcher, PossessionIndex, RequestSet, StripeRequest
from repro.core.parameters import homogeneous_population
from repro.core.video import Catalog
from repro.sim.churn import random_churn_schedule
from repro.sim.engine import VodSimulator
from repro.workloads.flashcrowd import FlashCrowdWorkload
from repro.workloads.popularity import ZipfDemandWorkload


def build_system(n=36, m=18, c=4, k=3, duration=15, seed=0):
    population = homogeneous_population(n, u=2.0, d=4.0)
    catalog = Catalog(num_videos=m, num_stripes=c, duration=duration)
    allocation = random_permutation_allocation(catalog, population, k, random_state=seed)
    return population, catalog, allocation


def run_simulator(allocation, warm_start, workload, num_rounds, **kwargs):
    simulator = VodSimulator(allocation, mu=1.5, warm_start=warm_start, **kwargs)
    return simulator.run(workload, num_rounds)


def round_signature(result):
    """Per-round (active, matched, feasible) triples from the metrics."""
    return [
        (stats.active_requests, stats.matched, stats.feasible)
        for stats in result.metrics.round_stats
    ]


class TestWarmStartEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_flashcrowd_trace_equivalence(self, seed):
        """On fully feasible traces warm and cold runs are identical.

        This is the guaranteed form of the equivalence: while every round
        is fully matched the pool state cannot depend on *which* maximum
        matching was returned, so the whole trace coincides round by round.
        """
        _, _, allocation = build_system(seed=seed)
        cold = run_simulator(
            allocation, False, FlashCrowdWorkload(mu=1.5, random_state=seed), 20
        )
        warm = run_simulator(
            allocation, True, FlashCrowdWorkload(mu=1.5, random_state=seed), 20
        )
        assert cold.feasible, "scenario must be feasible for trace equality"
        assert round_signature(cold) == round_signature(warm)
        assert warm.feasible
        assert cold.metrics.total_requests == warm.metrics.total_requests

    def test_startup_delays_match_on_feasible_runs(self):
        """On feasible traces the startup-delay distribution is identical."""
        _, _, allocation = build_system(seed=5)
        cold = run_simulator(
            allocation, False, FlashCrowdWorkload(mu=1.3, random_state=5), 18
        )
        warm = run_simulator(
            allocation, True, FlashCrowdWorkload(mu=1.3, random_state=5), 18
        )
        assert cold.feasible and warm.feasible
        assert cold.metrics.max_startup_delay == warm.metrics.max_startup_delay
        assert cold.metrics.mean_startup_delay == warm.metrics.mean_startup_delay

    def test_equivalence_under_overload_until_first_partial_round(self):
        """Overloaded runs agree up to and including the first partial round.

        A partially matched round may serve a different (equally sized)
        request subset under warm start, after which the trajectories may
        legitimately diverge — the guarantee is per-round maximality, and
        identical prefixes while the states coincide.
        """
        population = homogeneous_population(24, u=0.5, d=2.0)
        catalog = Catalog(num_videos=12, num_stripes=3, duration=15)
        allocation = random_permutation_allocation(catalog, population, 2, random_state=7)
        cold = run_simulator(
            allocation, False, ZipfDemandWorkload(arrival_rate=8.0, random_state=7), 12
        )
        warm = run_simulator(
            allocation, True, ZipfDemandWorkload(arrival_rate=8.0, random_state=7), 12
        )
        cold_sig, warm_sig = round_signature(cold), round_signature(warm)
        assert not cold.feasible  # the scenario is meant to overload
        first_partial = next(i for i, (_, _, ok) in enumerate(cold_sig) if not ok)
        assert cold_sig[: first_partial + 1] == warm_sig[: first_partial + 1]

    def test_stop_on_infeasible_equivalence_under_overload(self):
        """The estimator path (stop at first infeasible round) is identical."""
        population = homogeneous_population(24, u=0.5, d=2.0)
        catalog = Catalog(num_videos=12, num_stripes=3, duration=15)
        allocation = random_permutation_allocation(catalog, population, 2, random_state=7)
        cold = run_simulator(
            allocation,
            False,
            ZipfDemandWorkload(arrival_rate=8.0, random_state=7),
            12,
            stop_on_infeasible=True,
        )
        warm = run_simulator(
            allocation,
            True,
            ZipfDemandWorkload(arrival_rate=8.0, random_state=7),
            12,
            stop_on_infeasible=True,
        )
        assert cold.stopped_early and warm.stopped_early
        assert round_signature(cold) == round_signature(warm)
        assert cold.metrics.infeasible_rounds == warm.metrics.infeasible_rounds

    def test_equivalence_under_churn(self):
        """Offline boxes invalidate warm pairs without breaking equivalence.

        The churned scenario stays feasible (asserted), so the guaranteed
        full-trace equality applies despite capacity flapping.
        """
        _, _, allocation = build_system(seed=9)
        n = allocation.num_boxes

        def make_churn():
            return random_churn_schedule(
                num_boxes=n,
                horizon=16,
                failure_probability=0.03,
                outage_duration=2,
                random_state=11,
            )

        cold = run_simulator(
            allocation,
            False,
            FlashCrowdWorkload(mu=1.5, random_state=9),
            16,
            churn=make_churn(),
        )
        warm = run_simulator(
            allocation,
            True,
            FlashCrowdWorkload(mu=1.5, random_state=9),
            16,
            churn=make_churn(),
        )
        assert cold.feasible, "churn scenario must stay feasible for trace equality"
        assert round_signature(cold) == round_signature(warm)


class TestMatcherWarmStart:
    def test_stale_warm_assignment_is_revalidated(self):
        """A warm pair whose box lost possession or capacity is dropped."""
        population, catalog, allocation = build_system(seed=2)
        possession = PossessionIndex(allocation, cache_window=catalog.duration)
        matcher = ConnectionMatcher(population.upload_slots(catalog.num_stripes_per_video))
        requests = RequestSet(
            StripeRequest(stripe_id=s, request_time=0, box_id=(s + 7) % population.n)
            for s in range(10)
        )
        cold = matcher.match(requests, possession, current_time=0)
        assert cold.feasible
        # Replay with the previous assignment and with a corrupted one.
        for warm in (cold.assignment, np.full(len(requests), 0, dtype=np.int64)):
            again = matcher.match(requests, possession, current_time=0, warm_start=warm)
            assert again.feasible
            assert again.matched == cold.matched
        with pytest.raises(ValueError):
            matcher.match(requests, possession, 0, warm_start=np.zeros(3, dtype=np.int64))

    def test_warm_start_respects_busy_slots(self):
        """Capacity stolen by busy slots invalidates warm pairs on that box."""
        population, catalog, allocation = build_system(seed=3)
        slots = population.upload_slots(catalog.num_stripes_per_video)
        possession = PossessionIndex(allocation, cache_window=catalog.duration)
        matcher = ConnectionMatcher(slots)
        requests = RequestSet(
            StripeRequest(stripe_id=s, request_time=0, box_id=(s + 5) % population.n)
            for s in range(8)
        )
        cold = matcher.match(requests, possession, current_time=0)
        assert cold.feasible
        # Fully occupy the box serving request 0: the warm pair must move.
        busy = np.zeros(population.n, dtype=np.int64)
        pinned = int(cold.assignment[0])
        busy[pinned] = slots[pinned]
        again = matcher.match(
            requests, possession, current_time=0, busy_slots=busy, warm_start=cold.assignment
        )
        assert int(again.assignment[0]) != pinned
        assert again.box_load[pinned] == 0
