"""Tests for demand workloads (adversarial, flash crowd, popularity, sequential)."""

import numpy as np
import pytest

from repro.core.allocation import random_permutation_allocation
from repro.core.parameters import homogeneous_population
from repro.core.preloading import Demand
from repro.core.video import Catalog
from repro.sim.swarm import SwarmRegistry
from repro.workloads.adversarial import (
    ColdStartAdversary,
    LeastReplicatedAdversary,
    MissingVideoAdversary,
)
from repro.workloads.base import StaticDemandSchedule, SystemView
from repro.workloads.drift import DriftingZipfWorkload, FlashRotationWorkload
from repro.workloads.flashcrowd import FlashCrowdWorkload, StaggeredFlashCrowdWorkload
from repro.workloads.popularity import (
    UniformDemandWorkload,
    ZipfDemandWorkload,
    check_zipf_exponent,
    zipf_weights,
)
from repro.workloads.sequential import SequentialViewingWorkload
from repro.workloads.trace import TraceDemandWorkload, load_trace, resolve_trace_path


def make_view(time=0, n=30, m=20, c=4, u=1.5, d=3.0, k=3, mu=2.0, busy=(), seed=0):
    catalog = Catalog(num_videos=m, num_stripes=c, duration=25)
    population = homogeneous_population(n, u=u, d=d)
    allocation = random_permutation_allocation(catalog, population, k, random_state=seed)
    swarms = SwarmRegistry(mu=mu, duration=25)
    free = np.array([b for b in range(n) if b not in set(busy)], dtype=np.int64)
    return SystemView(
        time=time,
        catalog=catalog,
        allocation=allocation,
        population=population,
        swarms=swarms,
        free_boxes=free,
    )


class TestStaticSchedule:
    def test_demands_at_matching_round_only(self):
        schedule = StaticDemandSchedule(
            [Demand(0, 1, 2), Demand(2, 3, 4), Demand(2, 5, 6)]
        )
        assert len(schedule.demands_for_round(make_view(time=0))) == 1
        assert len(schedule.demands_for_round(make_view(time=1))) == 0
        assert len(schedule.demands_for_round(make_view(time=2))) == 2
        assert schedule.total_demands == 3

    def test_busy_boxes_filtered(self):
        schedule = StaticDemandSchedule([Demand(0, 1, 2)])
        assert schedule.demands_for_round(make_view(time=0, busy=(1,))) == []


class TestFlashCrowd:
    def test_growth_respects_mu(self):
        view = make_view(mu=1.5)
        workload = FlashCrowdWorkload(mu=1.5, random_state=0)
        demands = workload.demands_for_round(view)
        # Empty swarm: at most ceil(1.5) = 2 joiners.
        assert 1 <= len(demands) <= 2
        assert all(d.video_id == 0 for d in demands)

    def test_growth_uses_registry_state(self):
        view = make_view(mu=2.0)
        # Pretend 4 boxes already joined video 0 at round -? use time 1.
        for b in range(4):
            view.swarms.enter(0, b, time=0)
        view2 = SystemView(
            time=1,
            catalog=view.catalog,
            allocation=view.allocation,
            population=view.population,
            swarms=view.swarms,
            free_boxes=np.arange(4, 30, dtype=np.int64),
        )
        workload = FlashCrowdWorkload(mu=2.0, random_state=0)
        demands = workload.demands_for_round(view2)
        assert len(demands) == 4  # swarm may double from 4 to 8

    def test_max_members_cap(self):
        view = make_view(mu=4.0)
        workload = FlashCrowdWorkload(mu=4.0, max_members=3, random_state=0)
        total = len(workload.demands_for_round(view))
        assert total <= 3

    def test_start_time(self):
        workload = FlashCrowdWorkload(mu=1.5, start_time=5, random_state=0)
        assert workload.demands_for_round(make_view(time=0)) == []
        assert workload.demands_for_round(make_view(time=5))

    def test_target_video_out_of_range(self):
        workload = FlashCrowdWorkload(mu=1.5, target_videos=(99,))
        with pytest.raises(ValueError):
            workload.demands_for_round(make_view())

    def test_empty_targets_rejected(self):
        with pytest.raises(ValueError):
            FlashCrowdWorkload(mu=1.5, target_videos=())

    def test_staggered_crowds(self):
        workload = StaggeredFlashCrowdWorkload(
            mu=2.0, target_videos=(0, 1), start_times=(0, 3), random_state=0
        )
        early = workload.demands_for_round(make_view(time=0))
        assert {d.video_id for d in early} == {0}
        late = workload.demands_for_round(make_view(time=3))
        assert 1 in {d.video_id for d in late}

    def test_staggered_validation(self):
        with pytest.raises(ValueError):
            StaggeredFlashCrowdWorkload(mu=2.0, target_videos=(0,), start_times=(0, 1))


class TestAdversaries:
    def test_missing_video_adversary_targets_unstored_videos(self):
        view = make_view()
        adversary = MissingVideoAdversary(random_state=0)
        demands = adversary.demands_for_round(view)
        assert demands, "every box should miss some video in this configuration"
        c = view.catalog.num_stripes_per_video
        for demand in demands:
            stored = view.allocation.stripes_on_box(demand.box_id)
            stored_videos = set((stored // c).tolist())
            assert demand.video_id not in stored_videos

    def test_missing_video_adversary_throttle(self):
        adversary = MissingVideoAdversary(max_demands_per_round=5, random_state=0)
        assert len(adversary.demands_for_round(make_view())) <= 5

    def test_missing_video_adversary_respect_growth(self):
        view = make_view(mu=1.5)
        adversary = MissingVideoAdversary(respect_growth=True, mu=1.5, random_state=0)
        demands = adversary.demands_for_round(view)
        # With growth respected, each video receives at most ceil(1.5)=2 joiners.
        per_video = {}
        for d in demands:
            per_video[d.video_id] = per_video.get(d.video_id, 0) + 1
        assert all(count <= 2 for count in per_video.values())

    def test_missing_video_adversary_start_time(self):
        adversary = MissingVideoAdversary(start_time=4, random_state=0)
        assert adversary.demands_for_round(make_view(time=0)) == []

    def test_least_replicated_adversary_targets_weakest_video(self):
        view = make_view(mu=2.0)
        adversary = LeastReplicatedAdversary(mu=2.0, num_target_videos=1, random_state=0)
        demands = adversary.demands_for_round(view)
        assert demands
        coverage = view.allocation.distinct_coverage()
        per_video = coverage.reshape(view.catalog.num_videos, -1).min(axis=1)
        target = demands[0].video_id
        assert per_video[target] == per_video.min()

    def test_least_replicated_adversary_validation(self):
        with pytest.raises(ValueError):
            LeastReplicatedAdversary(mu=2.0, num_target_videos=0)

    def test_cold_start_adversary_targets_empty_swarms(self):
        view = make_view()
        view.swarms.enter(0, 0, time=0)
        adversary = ColdStartAdversary(random_state=0)
        demands = adversary.demands_for_round(
            SystemView(
                time=1,
                catalog=view.catalog,
                allocation=view.allocation,
                population=view.population,
                swarms=view.swarms,
                free_boxes=np.arange(1, 30, dtype=np.int64),
            )
        )
        assert demands
        assert all(d.video_id != 0 for d in demands)
        # Each cold video receives at most one demand.
        videos = [d.video_id for d in demands]
        assert len(videos) == len(set(videos))

    def test_cold_start_adversary_throttle(self):
        adversary = ColdStartAdversary(max_demands_per_round=3, random_state=0)
        assert len(adversary.demands_for_round(make_view())) <= 3


class TestPopularity:
    def test_zipf_weights_normalized_and_decreasing(self):
        weights = zipf_weights(20, exponent=0.8)
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(np.diff(weights) <= 0)

    def test_zipf_weights_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(5, exponent=0.0)

    def test_zipf_demand_counts_and_boxes(self):
        workload = ZipfDemandWorkload(arrival_rate=5.0, random_state=0)
        demands = workload.demands_for_round(make_view())
        assert all(0 <= d.video_id < 20 for d in demands)
        boxes = [d.box_id for d in demands]
        assert len(boxes) == len(set(boxes))

    def test_zipf_demand_truncated_to_free_boxes(self):
        view = make_view(busy=tuple(range(28)))  # only 2 free boxes
        workload = ZipfDemandWorkload(arrival_rate=50.0, random_state=0)
        assert len(workload.demands_for_round(view)) <= 2

    def test_zipf_start_time(self):
        workload = ZipfDemandWorkload(arrival_rate=5.0, start_time=2, random_state=0)
        assert workload.demands_for_round(make_view(time=0)) == []

    def test_zipf_popularity_skew(self):
        # Over many rounds, video 0 must receive more demands than video 19.
        workload = ZipfDemandWorkload(arrival_rate=10.0, exponent=1.2, random_state=0)
        counts = np.zeros(20)
        for t in range(60):
            for d in workload.demands_for_round(make_view(time=t)):
                counts[d.video_id] += 1
        assert counts[0] > counts[19]

    def test_uniform_demands(self):
        workload = UniformDemandWorkload(arrival_rate=5.0, random_state=0)
        demands = workload.demands_for_round(make_view())
        assert all(0 <= d.video_id < 20 for d in demands)


class TestSequentialViewing:
    def test_every_free_box_demands(self):
        workload = SequentialViewingWorkload(random_state=0)
        view = make_view()
        demands = workload.demands_for_round(view)
        assert len(demands) == view.free_boxes.size

    def test_playlist_is_cycled(self):
        workload = SequentialViewingWorkload(boxes=[0], playlist=[3, 7], random_state=0)
        first = workload.demands_for_round(make_view(time=0))
        second = workload.demands_for_round(make_view(time=1))
        third = workload.demands_for_round(make_view(time=2))
        assert [d[0].video_id for d in (first, second, third)] == [3, 7, 3]

    def test_no_immediate_repeat_without_playlist(self):
        workload = SequentialViewingWorkload(boxes=[0], random_state=0)
        last = None
        for t in range(10):
            demand = workload.demands_for_round(make_view(time=t))[0]
            assert demand.video_id != last
            last = demand.video_id

    def test_participant_filter(self):
        workload = SequentialViewingWorkload(boxes=[2, 3], random_state=0)
        demands = workload.demands_for_round(make_view())
        assert {d.box_id for d in demands} == {2, 3}

    def test_empty_playlist_rejected(self):
        with pytest.raises(ValueError):
            SequentialViewingWorkload(playlist=[])


class TestDegenerateZipfParameters:
    """Typed, actionable rejections of degenerate popularity parameters."""

    @pytest.mark.parametrize("alpha", [0.0, -0.5, float("nan"), float("inf")])
    def test_check_zipf_exponent_rejects(self, alpha):
        with pytest.raises(ValueError, match="alpha > 0"):
            check_zipf_exponent(alpha)

    def test_check_zipf_exponent_message_names_the_parameter(self):
        with pytest.raises(ValueError, match="drift_exponent"):
            check_zipf_exponent(-1.0, name="drift_exponent")

    def test_zipf_weights_rejects_empty_catalog_with_value(self):
        with pytest.raises(ValueError, match="got -3"):
            zipf_weights(-3)

    def test_zipf_weights_rejects_single_video_catalog(self):
        with pytest.raises(ValueError, match="single-video catalog is degenerate"):
            zipf_weights(1)

    @pytest.mark.parametrize("alpha", [0.0, -2.0, float("nan")])
    def test_zipf_workload_rejects_bad_exponent_at_construction(self, alpha):
        with pytest.raises(ValueError, match="alpha > 0"):
            ZipfDemandWorkload(arrival_rate=1.0, exponent=alpha)

    def test_drift_workload_rejects_bad_exponent_at_construction(self):
        with pytest.raises(ValueError, match="alpha > 0"):
            DriftingZipfWorkload(arrival_rate=1.0, exponent=-0.8)


class TestDriftWorkload:
    def test_array_and_object_paths_agree(self):
        a = DriftingZipfWorkload(4.0, exponent=1.0, drift_period=3, random_state=11)
        b = DriftingZipfWorkload(4.0, exponent=1.0, drift_period=3, random_state=11)
        for t in range(10):
            boxes, videos = a.demand_arrays_for_round(make_view(time=t))
            demands = b.demands_for_round(make_view(time=t))
            assert [(d.box_id, d.video_id) for d in demands] == list(
                zip(boxes.tolist(), videos.tolist())
            )

    def test_same_seed_reproduces_sequence(self):
        runs = []
        for _ in range(2):
            workload = DriftingZipfWorkload(
                4.0, exponent=1.0, drift_period=3, random_state=17
            )
            runs.append(
                [
                    tuple(workload.demand_arrays_for_round(make_view(time=t))[1].tolist())
                    for t in range(12)
                ]
            )
        assert runs[0] == runs[1]

    def test_start_time_gates_arrivals(self):
        workload = DriftingZipfWorkload(4.0, start_time=3, random_state=0)
        assert workload.demands_for_round(make_view(time=2)) == []

    def test_prefix_stability_across_horizons(self):
        """Rounds [0, 8) are identical whether the run lasts 8 or 20 rounds."""
        short = DriftingZipfWorkload(4.0, exponent=1.0, drift_period=3, random_state=23)
        long = DriftingZipfWorkload(4.0, exponent=1.0, drift_period=3, random_state=23)
        short_seq = [
            short.demand_arrays_for_round(make_view(time=t))[1].tolist()
            for t in range(8)
        ]
        long_seq = [
            long.demand_arrays_for_round(make_view(time=t))[1].tolist()
            for t in range(20)
        ]
        assert long_seq[:8] == short_seq


class TestFlashRotationWorkload:
    def test_boost_must_exceed_one(self):
        with pytest.raises(ValueError, match="boost must exceed 1"):
            FlashRotationWorkload(arrival_rate=1.0, boost=1.0)

    def test_hot_window_must_fit_catalog(self):
        workload = FlashRotationWorkload(arrival_rate=1.0, hot_videos=50)
        with pytest.raises(ValueError, match="exceeds the catalog size"):
            workload.demands_for_round(make_view())

    def test_demand_concentrates_on_hot_window(self):
        workload = FlashRotationWorkload(
            10.0, hot_videos=2, rotation_period=100, boost=50.0, random_state=3
        )
        hits = hot_hits = 0
        for t in range(40):
            for d in workload.demands_for_round(make_view(time=t)):
                hits += 1
                hot_hits += d.video_id in (0, 1)
        assert hits > 0 and hot_hits / hits > 0.6

    def test_window_rotates(self):
        workload = FlashRotationWorkload(
            1.0, hot_videos=4, rotation_period=2, boost=8.0, random_state=3
        )
        assert workload.hot_set(0, 20).tolist() == [0, 1, 2, 3]
        assert workload.hot_set(2, 20).tolist() == [4, 5, 6, 7]
        assert workload.hot_set(9, 20).tolist() == [16, 17, 18, 19]
        assert workload.hot_set(10, 20).tolist() == [0, 1, 2, 3]


class TestTraceWorkload:
    def test_replays_fixture_videos_in_order(self):
        header, events = load_trace(resolve_trace_path("zipf_small"))
        workload = TraceDemandWorkload("zipf_small", random_state=1)
        replayed = []
        for t in range(25):
            _, videos = workload.demand_arrays_for_round(make_view(time=t, m=16, n=200))
            replayed.extend(videos.tolist())
        assert replayed == [v for _, v in events]

    def test_unknown_trace_is_actionable(self):
        with pytest.raises(FileNotFoundError, match="bundled traces: "):
            TraceDemandWorkload("no_such_trace")

    def test_catalog_smaller_than_trace_rejected(self):
        workload = TraceDemandWorkload("zipf_small", random_state=1)
        with pytest.raises(ValueError, match="at least 16 videos"):
            workload.demand_arrays_for_round(make_view(time=0, m=8))

    def test_surplus_events_drop_when_boxes_scarce(self):
        workload = TraceDemandWorkload("zipf_small", random_state=1)
        view = make_view(time=0, m=16, busy=tuple(range(29)))  # 1 free box
        demands = workload.demands_for_round(view)
        assert len(demands) == 1

    def test_start_time_shifts_the_replay(self):
        workload = TraceDemandWorkload("zipf_small", start_time=5, random_state=1)
        assert workload.demands_for_round(make_view(time=4, m=16)) == []
        assert len(workload.demands_for_round(make_view(time=5, m=16))) > 0

    def test_array_and_object_paths_agree(self):
        a = TraceDemandWorkload("zipf_small", random_state=7)
        b = TraceDemandWorkload("zipf_small", random_state=7)
        for t in range(10):
            boxes, videos = a.demand_arrays_for_round(make_view(time=t, m=16))
            demands = b.demands_for_round(make_view(time=t, m=16))
            assert [(d.box_id, d.video_id) for d in demands] == list(
                zip(boxes.tolist(), videos.tolist())
            )
