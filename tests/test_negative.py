"""Tests for the negative result (u < 1 ⇒ constant catalog, Section 1.3)."""

import numpy as np
import pytest

from repro.core.allocation import random_permutation_allocation
from repro.core.negative import (
    adversarial_missing_video_demands,
    bandwidth_shortfall,
    build_negative_witness,
    catalog_upper_bound_below_threshold,
    missing_videos_per_box,
)
from repro.core.parameters import homogeneous_population
from repro.core.video import Catalog
from repro.baselines.full_replication import full_replication_allocation


class TestCatalogCap:
    def test_value(self):
        assert catalog_upper_bound_below_threshold(d_max=4.0, chunk_size=0.25) == 16.0

    def test_validation(self):
        with pytest.raises(ValueError):
            catalog_upper_bound_below_threshold(0.0, 0.25)
        with pytest.raises(ValueError):
            catalog_upper_bound_below_threshold(4.0, 0.0)
        with pytest.raises(ValueError):
            catalog_upper_bound_below_threshold(4.0, 1.5)


class TestMissingVideos:
    def test_every_box_misses_some_video_when_catalog_large(self):
        # m = 25 videos, storage d=2, c=4 → a box holds ≤ 8 stripes spread over
        # at most 8 videos: every box misses many videos.
        catalog = Catalog(num_videos=25, num_stripes=4, duration=20)
        population = homogeneous_population(50, u=0.8, d=2.0)
        allocation = random_permutation_allocation(catalog, population, 2, random_state=0)
        missing = missing_videos_per_box(allocation)
        assert len(missing) == population.n
        assert all(m.size > 0 for m in missing)

    def test_full_replication_leaves_nothing_missing(self):
        catalog = Catalog(num_videos=5, num_stripes=4, duration=20)
        population = homogeneous_population(8, u=0.8, d=2.0)
        allocation = full_replication_allocation(catalog, population, replicas_per_stripe=2)
        missing = missing_videos_per_box(allocation)
        assert all(m.size == 0 for m in missing)

    def test_missing_videos_are_truly_missing(self):
        catalog = Catalog(num_videos=25, num_stripes=4, duration=20)
        population = homogeneous_population(50, u=0.8, d=2.0)
        allocation = random_permutation_allocation(catalog, population, 2, random_state=1)
        missing = missing_videos_per_box(allocation)
        for box_id in range(5):
            stored = set(allocation.stripes_on_box(box_id).tolist())
            for video in missing[box_id][:5]:
                stripes = set(catalog.stripes_of_video(int(video)).tolist())
                assert not (stored & stripes)


class TestAdversarialDemands:
    def test_one_demand_per_attackable_box(self):
        catalog = Catalog(num_videos=25, num_stripes=4, duration=20)
        population = homogeneous_population(40, u=0.8, d=2.0)
        allocation = random_permutation_allocation(catalog, population, 2, random_state=2)
        demands = adversarial_missing_video_demands(allocation, time=3)
        assert len(demands) == population.n
        assert len({d.box_id for d in demands}) == population.n
        assert all(d.time == 3 for d in demands)

    def test_demanded_video_not_stored_by_demander(self):
        catalog = Catalog(num_videos=25, num_stripes=4, duration=20)
        population = homogeneous_population(40, u=0.8, d=2.0)
        allocation = random_permutation_allocation(catalog, population, 2, random_state=2)
        for demand in adversarial_missing_video_demands(allocation):
            stored = set(allocation.stripes_on_box(demand.box_id).tolist())
            stripes = set(catalog.stripes_of_video(demand.video_id).tolist())
            assert not (stored & stripes)

    def test_spread_uses_multiple_videos(self):
        catalog = Catalog(num_videos=25, num_stripes=4, duration=20)
        population = homogeneous_population(40, u=0.8, d=2.0)
        allocation = random_permutation_allocation(catalog, population, 2, random_state=2)
        spread = adversarial_missing_video_demands(allocation, spread=True)
        assert len({d.video_id for d in spread}) > 1


class TestShortfallAndWitness:
    def test_bandwidth_shortfall(self):
        assert bandwidth_shortfall(100, 0.8) == pytest.approx(20.0)
        assert bandwidth_shortfall(100, 1.2) == pytest.approx(-20.0)
        with pytest.raises(ValueError):
            bandwidth_shortfall(-1, 0.5)
        with pytest.raises(ValueError):
            bandwidth_shortfall(10, -0.5)

    def test_witness_infeasible_below_threshold(self):
        catalog = Catalog(num_videos=25, num_stripes=4, duration=20)
        population = homogeneous_population(40, u=0.8, d=2.0)
        allocation = random_permutation_allocation(catalog, population, 2, random_state=3)
        witness = build_negative_witness(allocation)
        assert witness.attackable_boxes == 40
        assert witness.aggregate_download == pytest.approx(40.0)
        assert witness.aggregate_upload == pytest.approx(32.0)
        assert witness.infeasible
        assert witness.describe()["infeasible"]

    def test_witness_feasible_above_threshold(self):
        catalog = Catalog(num_videos=25, num_stripes=4, duration=20)
        population = homogeneous_population(40, u=1.5, d=2.0)
        allocation = random_permutation_allocation(catalog, population, 2, random_state=3)
        witness = build_negative_witness(allocation)
        assert not witness.infeasible

    def test_witness_not_attackable_under_full_replication(self):
        # With a constant catalog below d·c every box stores data of every
        # video and the missing-video attack has no target.
        catalog = Catalog(num_videos=6, num_stripes=4, duration=20)
        population = homogeneous_population(16, u=0.8, d=2.0)
        allocation = full_replication_allocation(catalog, population, replicas_per_stripe=4)
        witness = build_negative_witness(allocation)
        assert witness.attackable_boxes == 0
        assert not witness.infeasible
        assert witness.catalog_cap == pytest.approx(8.0)
