"""The content-addressed results store: records, indexes, atomicity."""

from __future__ import annotations

import json

import pytest

from repro.orchestrate.spec import CampaignSpec, CellSpec
from repro.orchestrate.store import ResultsStore, StoreError


@pytest.fixture
def store(tmp_path):
    return ResultsStore(tmp_path / "store")


CELL = CellSpec(runner="echo", params={"u": 2.0, "n": 10})
ROWS = [{"u": 2.0, "feasible": True}, {"u": 2.0, "feasible": False}]


class TestObjects:
    def test_put_get_round_trip(self, store):
        key = store.put(CELL, ROWS)
        assert key == CELL.key
        record = store.get(key)
        assert record["rows"] == ROWS
        assert record["runner"] == "echo"
        assert record["params"] == {"u": 2.0, "n": 10}

    def test_has_keys_len_contains(self, store):
        assert not store.has(CELL.key)
        assert store.keys() == []
        store.put(CELL, ROWS)
        assert store.has(CELL.key)
        assert CELL.key in store
        assert store.keys() == [CELL.key]
        assert len(store) == 1

    def test_put_is_deterministic_bytes(self, store):
        store.put(CELL, ROWS)
        path = store._object_path(CELL.key)
        first = path.read_bytes()
        store.put(CELL, ROWS)
        assert path.read_bytes() == first

    def test_get_missing_raises(self, store):
        with pytest.raises(StoreError, match="no record"):
            store.get(CELL.key)

    def test_malformed_key_rejected(self, store):
        with pytest.raises(StoreError, match="malformed"):
            store.has("not-a-key")
        with pytest.raises(StoreError, match="malformed"):
            store.has("../" + "0" * 62)

    def test_corrupt_record_raises(self, store):
        store.put(CELL, ROWS)
        path = store._object_path(CELL.key)
        path.write_text("{ torn", encoding="utf-8")
        with pytest.raises(StoreError, match="corrupt"):
            store.get(CELL.key)

    def test_key_mismatch_detected(self, store):
        store.put(CELL, ROWS)
        other = CellSpec(runner="echo", params={"u": 3.0})
        path = store._object_path(other.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps({"key": CELL.key, "rows": []}), encoding="utf-8"
        )
        with pytest.raises(StoreError, match="claims key"):
            store.get(other.key)

    def test_objects_sharded_by_key_prefix(self, store):
        store.put(CELL, ROWS)
        path = store._object_path(CELL.key)
        assert path.parent.name == CELL.key[:2]


class TestCampaignIndex:
    def make_campaign(self):
        return CampaignSpec(
            name="demo",
            description="d",
            runner="echo",
            base={"n": 10},
            grid={"u": (1.5, 2.0)},
        )

    def test_write_read_round_trip(self, store):
        campaign = self.make_campaign()
        store.write_campaign_index(campaign)
        index = store.read_campaign_index("demo")
        assert index["name"] == "demo"
        assert index["cells"] == campaign.cell_keys()
        assert CampaignSpec.from_dict(index["spec"]) == campaign

    def test_missing_index_raises(self, store):
        with pytest.raises(StoreError, match="never run"):
            store.read_campaign_index("demo")

    def test_campaign_names(self, store):
        assert store.campaign_names() == []
        store.write_campaign_index(self.make_campaign())
        assert store.campaign_names() == ["demo"]

    def test_malformed_campaign_name_rejected(self, store):
        with pytest.raises(StoreError, match="malformed"):
            store.read_campaign_index("../evil")

    def test_missing_cells(self, store):
        campaign = self.make_campaign()
        assert [c.params["u"] for c in store.missing_cells(campaign)] == [1.5, 2.0]
        store.put(campaign.cells()[0], [{"u": 1.5}])
        assert [c.params["u"] for c in store.missing_cells(campaign)] == [2.0]
