"""Tests for min-cut extraction and the max-flow/min-cut certificate."""

import numpy as np
import pytest

from repro.flow.dinic import dinic_max_flow
from repro.flow.mincut import (
    cut_capacity,
    min_cut,
    residual_reachable,
    verify_max_flow_min_cut,
)
from repro.flow.network import FlowNetwork


def solved_simple_network():
    net = FlowNetwork(4)
    net.add_edge(0, 1, 3)
    net.add_edge(0, 2, 2)
    net.add_edge(1, 3, 2)
    net.add_edge(2, 3, 3)
    value = dinic_max_flow(net, 0, 3)
    return net, value


class TestResidualReachable:
    def test_reachable_before_any_flow(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 1)
        net.add_edge(1, 2, 1)
        assert residual_reachable(net, 0) == {0, 1, 2}

    def test_reachability_shrinks_after_max_flow(self):
        net, _ = solved_simple_network()
        reachable = residual_reachable(net, 0)
        assert 0 in reachable
        assert 3 not in reachable

    def test_out_of_range_source(self):
        net = FlowNetwork(2)
        with pytest.raises(ValueError):
            residual_reachable(net, 5)


class TestMinCut:
    def test_cut_value_equals_flow(self):
        net, value = solved_simple_network()
        source_side, cut_edges = min_cut(net, 0, 3)
        cut_cap = sum(net.edge(e).capacity for e in cut_edges)
        assert cut_cap == value == 4

    def test_min_cut_requires_max_flow(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 1)
        with pytest.raises(ValueError):
            min_cut(net, 0, 1)

    def test_cut_capacity_helper(self):
        net, value = solved_simple_network()
        source_side, _ = min_cut(net, 0, 3)
        assert cut_capacity(net, source_side) == value

    def test_bottleneck_cut_identified(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 10)
        e_mid = net.add_edge(1, 2, 1)
        net.add_edge(2, 3, 10)
        dinic_max_flow(net, 0, 3)
        source_side, cut_edges = min_cut(net, 0, 3)
        assert cut_edges == [e_mid]
        assert source_side == {0, 1}


class TestCertificate:
    def test_valid_certificate_after_solver(self):
        net, _ = solved_simple_network()
        assert verify_max_flow_min_cut(net, 0, 3)

    def test_partial_flow_fails_certificate(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 2)
        net.add_edge(1, 2, 2)
        # no flow pushed: sink still reachable → not a max flow
        assert not verify_max_flow_min_cut(net, 0, 2)

    def test_unbalanced_flow_fails_certificate(self):
        net = FlowNetwork(3)
        e1 = net.add_edge(0, 1, 2)
        net.add_edge(1, 2, 2)
        net.push(e1, 2)  # conservation violated at node 1
        assert not verify_max_flow_min_cut(net, 0, 2)

    @pytest.mark.parametrize("seed", range(6))
    def test_certificate_on_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        n = 8
        net = FlowNetwork(n)
        for a in range(n):
            for b in range(n):
                if a != b and rng.random() < 0.4:
                    net.add_edge(a, b, int(rng.integers(1, 9)))
        dinic_max_flow(net, 0, n - 1)
        assert verify_max_flow_min_cut(net, 0, n - 1)
