"""Property tests for the struct-of-arrays engine core.

The vectorized hot path (PR 4) replaced per-object Python state — request
records, swarm member lists, per-stripe cache ring buffers — with NumPy
struct-of-arrays buffers.  The tests below pin its behaviour to simple
object-state reference models over randomized small instances:

* :class:`ActiveRequestPool` against a list-of-records model (activation
  order, expiry, first-service rounds, warm-start column);
* :class:`SwarmRegistry` against the historical scan-based model (sizes,
  membership windows, growth violations);
* the batched adjacency builder against the per-request path and the
  set-based fallback;
* the Hopcroft–Karp warm-start fast path against cold solves and the
  max-flow oracle;
* snapshot → restore → step equality on the array buffers themselves.
"""

from __future__ import annotations

import math
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import random_permutation_allocation
from repro.core.matching import ArrayRequestSet, PossessionIndex, StripeRequest
from repro.core.parameters import homogeneous_population
from repro.core.video import Catalog
from repro.flow.bipartite import solve_b_matching
from repro.flow.hopcroft_karp import csr_from_edges, hopcroft_karp_matching
from repro.sim.scheduler import ActiveRequestPool
from repro.sim.swarm import SwarmRegistry


# --------------------------------------------------------------------- #
# ActiveRequestPool vs. object-state reference model
# --------------------------------------------------------------------- #
class _ReferencePool:
    """The historical list-of-records pool semantics, reimplemented."""

    def __init__(self, duration: int):
        self.duration = duration
        self.rows = []  # dicts: stripe, rtime, box, first, demand, assigned
        self.expired_unserved = 0

    def add(self, stripe, rtime, box, demand):
        self.rows.append(
            {"stripe": stripe, "rtime": rtime, "box": box,
             "first": None, "demand": demand, "assigned": -1}
        )

    def apply_matching(self, assignment, time):
        for row, box in zip(self.rows, assignment):
            row["assigned"] = int(box)
            if box >= 0 and row["first"] is None:
                row["first"] = time

    def expire(self, current_time):
        keep = []
        for row in self.rows:
            anchor = row["first"] if row["first"] is not None else row["rtime"]
            if current_time - anchor >= self.duration:
                if row["first"] is None:
                    self.expired_unserved += 1
            else:
                keep.append(row)
        self.rows = keep


pool_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("add"),
            st.integers(0, 12),   # stripe
            st.integers(0, 30),   # box
            st.integers(0, 4),    # demand index
        ),
        st.tuples(st.just("match"), st.integers(0, 100)),  # match-fraction seed
        st.tuples(st.just("tick"), st.integers(1, 3)),
    ),
    min_size=1,
    max_size=60,
)


class TestPoolEquivalence:
    @given(ops=pool_ops, duration=st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_pool_matches_reference_model(self, ops, duration):
        pool = ActiveRequestPool(duration)
        model = _ReferencePool(duration)
        time = 0
        for op in ops:
            if op[0] == "add":
                _, stripe, box, demand = op
                pool.add(
                    StripeRequest(stripe_id=stripe, request_time=time, box_id=box),
                    demand_index=demand,
                )
                model.add(stripe, time, box, demand)
            elif op[0] == "match":
                _, seed = op
                rng = np.random.default_rng(seed)
                n = len(pool)
                assignment = rng.integers(-1, 5, size=n)
                pool.apply_matching(assignment, time)
                model.apply_matching(assignment, time)
            else:
                time += op[1]
                pool.drop_expired(time)
                model.expire(time)
            self._assert_equal(pool, model)

    def _assert_equal(self, pool: ActiveRequestPool, model: _ReferencePool):
        assert len(pool) == len(model.rows)
        assert pool.expired_unserved == model.expired_unserved
        assert pool.stripe_ids.tolist() == [r["stripe"] for r in model.rows]
        assert pool.request_times.tolist() == [r["rtime"] for r in model.rows]
        assert pool.box_ids.tolist() == [r["box"] for r in model.rows]
        assert pool.assigned_boxes.tolist() == [r["assigned"] for r in model.rows]
        firsts = [-1 if r["first"] is None else r["first"] for r in model.rows]
        assert pool.first_matched.tolist() == firsts
        # The object views agree with the arrays.
        for record, row in zip(pool.active, model.rows):
            assert record.request.stripe_id == row["stripe"]
            assert record.first_matched_round == row["first"]
            assert record.assigned_box == row["assigned"]

    def test_expire_returns_materialized_records(self):
        pool = ActiveRequestPool(duration=2)
        pool.add(StripeRequest(stripe_id=1, request_time=0, box_id=3))
        pool.add(StripeRequest(stripe_id=2, request_time=0, box_id=4))
        pool.apply_matching(np.array([5, -1]), 0)
        removed = pool.expire(2)
        assert [r.request.stripe_id for r in removed] == [1, 2]
        assert pool.expired_unserved == 1
        assert len(pool) == 0

    def test_request_set_snapshot_survives_pool_mutation(self):
        pool = ActiveRequestPool(duration=4)
        pool.add(StripeRequest(stripe_id=7, request_time=0, box_id=1))
        snapshot = pool.request_set()
        pool.drop_expired(10)
        assert len(pool) == 0
        assert snapshot.stripe_multiset() == [7]
        assert snapshot[0] == StripeRequest(stripe_id=7, request_time=0, box_id=1)


# --------------------------------------------------------------------- #
# SwarmRegistry vs. scan-based reference model
# --------------------------------------------------------------------- #
class _ReferenceSwarms:
    """The historical list-scan registry semantics, reimplemented."""

    def __init__(self, mu, duration):
        self.mu, self.duration = mu, duration
        self.members = {}  # video -> [(box, entry)]
        self.violations = []

    def size(self, video, time):
        entries = self.members.get(video, [])
        return sum(1 for _, e in entries if e <= time < e + self.duration)

    def members_at(self, video, time):
        entries = self.members.get(video, [])
        return [b for b, e in entries if e <= time < e + self.duration]

    def enter(self, video, box, time):
        previous = self.size(video, time - 1) if time > 0 else 0
        self.members.setdefault(video, []).append((box, time))
        new_size = self.size(video, time)
        allowed = math.ceil(max(previous, 1) * self.mu)
        if new_size > allowed:
            self.violations.append((video, time, previous, new_size, allowed))


swarm_entries = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 20), st.integers(0, 15)),
    min_size=1,
    max_size=50,
)


class TestSwarmEquivalence:
    @given(entries=swarm_entries, duration=st.integers(0, 8), monotone=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_registry_matches_reference_model(self, entries, duration, monotone):
        if monotone:
            entries = sorted(entries, key=lambda entry: entry[1])
        registry = SwarmRegistry(mu=1.5, duration=duration)
        model = _ReferenceSwarms(mu=1.5, duration=duration)
        for video, time, box in entries:
            registry.enter(video, box, time)
            model.enter(video, box, time)
        for video in range(4):
            for time in range(0, 22):
                assert registry.size(video, time) == model.size(video, time), (
                    video, time,
                )
                assert sorted(registry.members(video, time)) == sorted(
                    model.members_at(video, time)
                )
        got = [
            (v.video_id, v.time, v.previous_size, v.new_size, v.allowed_size)
            for v in registry.violations
        ]
        assert got == model.violations

    def test_members_preserve_insertion_order_when_monotone(self):
        registry = SwarmRegistry(mu=10.0, duration=10)
        for box in (5, 3, 9):
            registry.enter(0, box, 2)
        assert registry.members(0, 2) == [5, 3, 9]


# --------------------------------------------------------------------- #
# Batched adjacency vs. the per-request and set-based paths
# --------------------------------------------------------------------- #
class _PerRowPossession(PossessionIndex):
    """Forces the per-request cache path (the pre-batching semantics)."""

    def _cache_boxes_array(self, stripe_id, request_time, current_time):
        return super()._cache_boxes_array(stripe_id, request_time, current_time)


@st.composite
def possession_instances(draw):
    num_videos = draw(st.integers(2, 5))
    catalog = Catalog(num_videos=num_videos, num_stripes=3, duration=6)
    population = homogeneous_population(draw(st.integers(8, 20)), u=2.0, d=3.0)
    allocation = random_permutation_allocation(
        catalog, population, replicas_per_stripe=2,
        random_state=draw(st.integers(0, 10_000)),
    )
    downloads = draw(
        st.lists(
            st.tuples(
                st.integers(0, catalog.total_stripes - 1),
                st.integers(0, population.n - 1),
                st.integers(0, 9),
            ),
            max_size=40,
        )
    )
    relays = draw(
        st.lists(
            st.tuples(
                st.integers(0, catalog.total_stripes - 1),
                st.integers(0, population.n - 1),
            ),
            max_size=5,
        )
    )
    requests = draw(
        st.lists(
            st.tuples(
                st.integers(0, catalog.total_stripes - 1),
                st.integers(0, 10),
                st.integers(0, population.n - 1),
            ),
            min_size=1,
            max_size=25,
        )
    )
    current_time = draw(st.integers(0, 12))
    evict_at = draw(st.none() | st.integers(0, 12))
    return allocation, downloads, relays, requests, current_time, evict_at


class TestAdjacencyEquivalence:
    def _build(self, cls, allocation, downloads, relays, evict_at):
        possession = cls(allocation, cache_window=6)
        for stripe, box, time in downloads:
            possession.record_download(stripe, box, time)
        for stripe, box in relays:
            possession.record_relay_cache(stripe, box)
        if evict_at is not None:
            possession.evict_before(evict_at)
        return possession

    @given(instance=possession_instances())
    @settings(max_examples=80, deadline=None)
    def test_batched_adjacency_equals_per_request_path(self, instance):
        allocation, downloads, relays, requests, current_time, evict_at = instance
        batched = self._build(PossessionIndex, allocation, downloads, relays, evict_at)
        per_row = self._build(_PerRowPossession, allocation, downloads, relays, evict_at)

        request_objs = [
            StripeRequest(stripe_id=s, request_time=t, box_id=b)
            for s, t, b in requests
        ]
        array_set = ArrayRequestSet(
            np.array([s for s, _, _ in requests], dtype=np.int64),
            np.array([t for _, t, _ in requests], dtype=np.int64),
            np.array([b for _, _, b in requests], dtype=np.int64),
        )
        indptr_a, indices_a = batched.adjacency_for(array_set, current_time)
        indptr_o, indices_o = batched.adjacency_for(request_objs, current_time)
        indptr_p, indices_p = per_row.adjacency_for(request_objs, current_time)
        # Array-extracted and object-extracted inputs are bit-identical,
        # and both match the per-request path edge for edge (order included).
        assert indptr_a.tolist() == indptr_o.tolist() == indptr_p.tolist()
        assert indices_a.tolist() == indices_o.tolist() == indices_p.tolist()

        # The set-based fallback agrees on the neighbourhood *sets*.
        for i, request in enumerate(request_objs):
            row = set(indices_a[indptr_a[i]: indptr_a[i + 1]].tolist())
            expected = batched.servers_for(request, current_time)
            expected.discard(request.box_id)
            assert row == expected

    @given(instance=possession_instances())
    @settings(max_examples=40, deadline=None)
    def test_single_stripe_queries_match_window_semantics(self, instance):
        allocation, downloads, relays, _, current_time, evict_at = instance
        possession = self._build(PossessionIndex, allocation, downloads, relays, evict_at)
        horizon = current_time - possession.cache_window
        live = [
            (s, b, t) for s, b, t in downloads
            if evict_at is None or t >= evict_at - possession.cache_window
        ]
        for stripe in range(allocation.num_stripes):
            for request_time in range(0, 12):
                got = sorted(
                    possession._cache_boxes_array(
                        stripe, request_time, current_time
                    ).tolist()
                )
                expected = sorted(
                    b for s, b, t in live
                    if s == stripe and horizon <= t < request_time
                )
                assert got == expected, (stripe, request_time)


# --------------------------------------------------------------------- #
# Kernel: warm-start fast path vs. cold solves and the max-flow oracle
# --------------------------------------------------------------------- #
@st.composite
def matching_instances(draw):
    num_left = draw(st.integers(1, 18))
    num_right = draw(st.integers(1, 10))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, num_left - 1), st.integers(0, num_right - 1)),
            max_size=60,
        )
    )
    caps = draw(
        st.lists(st.integers(0, 3), min_size=num_right, max_size=num_right)
    )
    warm = draw(
        st.none()
        | st.lists(
            st.integers(-1, num_right - 1), min_size=num_left, max_size=num_left
        )
    )
    return num_left, num_right, edges, caps, warm


class TestKernelWarmStart:
    @given(instance=matching_instances())
    @settings(max_examples=120, deadline=None)
    def test_warm_start_preserves_cardinality_and_validity(self, instance):
        num_left, num_right, edges, caps, warm = instance
        indptr, indices = csr_from_edges(num_left, num_right, edges)
        cold = hopcroft_karp_matching(num_left, num_right, indptr, indices, caps)
        warm_result = hopcroft_karp_matching(
            num_left, num_right, indptr, indices, caps,
            initial_assignment=warm,
        )
        assert warm_result.matched == cold.matched
        assert warm_result.feasible == cold.feasible

        oracle = solve_b_matching(
            num_left, num_right, edges, caps, method="dinic"
        )
        assert cold.matched == oracle.matched

        rows = [
            set(indices[indptr[i]: indptr[i + 1]].tolist())
            for i in range(num_left)
        ]
        for result in (cold, warm_result):
            load = [0] * num_right
            for i, box in enumerate(result.assignment.tolist()):
                if box >= 0:
                    assert box in rows[i]
                    load[box] += 1
            assert all(load[j] <= caps[j] for j in range(num_right))

    def test_numpy_and_list_inputs_agree(self):
        indptr = [0, 2, 4]
        indices = [0, 1, 0, 1]
        caps = [1, 1]
        from_lists = hopcroft_karp_matching(2, 2, indptr, indices, caps)
        from_arrays = hopcroft_karp_matching(
            2, 2,
            np.asarray(indptr, dtype=np.int64),
            np.asarray(indices, dtype=np.int64),
            np.asarray(caps, dtype=np.int64),
        )
        assert from_lists.assignment.tolist() == from_arrays.assignment.tolist()


# --------------------------------------------------------------------- #
# Snapshot -> restore -> step equality on the array buffers
# --------------------------------------------------------------------- #
class TestArrayStateSnapshot:
    def _session(self, horizon=12):
        from repro.scenarios.build import build_scenario
        from repro.scenarios.registry import get_scenario

        compiled = build_scenario(get_scenario("steady_state"), seed=21)
        return compiled.session(horizon=horizon)

    @pytest.mark.parametrize("split", [1, 4, 7])
    def test_restored_array_buffers_are_identical(self, split):
        session = self._session()
        session.step_until(rounds=split)
        snapshot = session.snapshot()

        from repro.api.session import VodSession

        restored = VodSession.restore(snapshot)
        pool_a = session.engine._pool
        pool_b = restored.engine._pool
        for field in ("stripe_ids", "request_times", "box_ids", "first_matched",
                      "demand_indices", "assigned_boxes"):
            assert getattr(pool_a, field).tolist() == getattr(pool_b, field).tolist()

        # Stepping both produces bit-identical rounds and buffers.
        for _ in range(3):
            left = session.step()
            right = restored.step()
            assert left.to_dict() == right.to_dict()
        assert session.engine._pool.assigned_boxes.tolist() == (
            restored.engine._pool.assigned_boxes.tolist()
        )

    def test_pool_pickle_roundtrip_preserves_live_segment_only(self):
        pool = ActiveRequestPool(duration=3)
        for k in range(10):
            pool.add(StripeRequest(stripe_id=k, request_time=0, box_id=k))
        pool.apply_matching(np.arange(10, dtype=np.int64), 0)
        pool.drop_expired(3)
        clone = pickle.loads(pickle.dumps(pool))
        assert len(clone) == len(pool)
        assert clone.stripe_ids.tolist() == pool.stripe_ids.tolist()
        assert clone.expired_unserved == pool.expired_unserved
