"""Cross-module property-based tests (hypothesis) on the core invariants."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import thresholds as th
from repro.core.allocation import random_permutation_allocation
from repro.core.matching import ConnectionMatcher, PossessionIndex, RequestSet, StripeRequest
from repro.core.obstruction import first_moment_bound_paper, lemma4_log_probability
from repro.core.parameters import homogeneous_population
from repro.core.preloading import Demand, PreloadingScheduler
from repro.core.video import Catalog
from repro.sim.swarm import max_new_members

slow_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestAllocationInvariants:
    @slow_settings
    @given(
        seed=st.integers(0, 10_000),
        m=st.integers(2, 12),
        c=st.integers(1, 6),
        k=st.integers(1, 4),
        n=st.integers(4, 40),
    )
    def test_permutation_allocation_structural_invariants(self, seed, m, c, k, n):
        catalog = Catalog(num_videos=m, num_stripes=c, duration=10)
        # Size storage generously so the allocation always fits.
        d = max(2.0, (m * c * k) / (n * c) * 2.0)
        population = homogeneous_population(n, u=1.0, d=d)
        allocation = random_permutation_allocation(catalog, population, k, random_state=seed)
        # Exactly k replicas per stripe, total replicas conserved.
        assert allocation.total_replicas == m * c * k
        assert int(allocation.box_loads().sum()) == m * c * k
        # Distinct coverage between 1 and k.
        coverage = allocation.distinct_coverage()
        assert np.all((coverage >= 1) & (coverage <= k))
        # Storage never exceeded.
        assert allocation.respects_storage()

    @slow_settings
    @given(seed=st.integers(0, 10_000))
    def test_permutation_allocation_deterministic_in_seed(self, seed):
        catalog = Catalog(num_videos=5, num_stripes=3, duration=10)
        population = homogeneous_population(15, u=1.0, d=3.0)
        a = random_permutation_allocation(catalog, population, 2, random_state=seed)
        b = random_permutation_allocation(catalog, population, 2, random_state=seed)
        np.testing.assert_array_equal(a.replica_box, b.replica_box)


class TestPreloadingInvariants:
    @slow_settings
    @given(
        c=st.integers(1, 10),
        num_demands=st.integers(1, 20),
        seed=st.integers(0, 1000),
    )
    def test_every_demand_generates_exactly_c_requests_covering_all_stripes(
        self, c, num_demands, seed
    ):
        rng = np.random.default_rng(seed)
        catalog = Catalog(num_videos=6, num_stripes=c, duration=20)
        scheduler = PreloadingScheduler(catalog)
        for i in range(num_demands):
            box = i
            video = int(rng.integers(6))
            time = int(rng.integers(10))
            immediate = scheduler.on_demand(Demand(time=time, box_id=box, video_id=video))
            postponed = scheduler.requests_due(time + 1)
            own_postponed = [r for r in postponed if r.box_id == box]
            all_requests = immediate + own_postponed
            assert len(all_requests) == c
            assert {r.stripe_id for r in all_requests} == set(
                catalog.stripes_of_video(video).tolist()
            )
            assert sum(1 for r in all_requests if r.is_preload) == 1

    @slow_settings
    @given(c=st.integers(1, 8), joiners=st.integers(1, 30))
    def test_preload_stripes_balanced_within_one(self, c, joiners):
        catalog = Catalog(num_videos=2, num_stripes=c, duration=20)
        scheduler = PreloadingScheduler(catalog)
        counts = np.zeros(c, dtype=int)
        for box in range(joiners):
            request = scheduler.on_demand(Demand(time=0, box_id=box, video_id=0))[0]
            counts[catalog.stripe_index_of(request.stripe_id)] += 1
        assert counts.max() - counts.min() <= 1


class TestMatchingInvariants:
    @slow_settings
    @given(seed=st.integers(0, 5000), num_requests=st.integers(0, 12))
    def test_matching_never_exceeds_capacities_and_respects_possession(
        self, seed, num_requests
    ):
        rng = np.random.default_rng(seed)
        c = 3
        catalog = Catalog(num_videos=6, num_stripes=c, duration=20)
        population = homogeneous_population(12, u=1.0, d=3.0)
        allocation = random_permutation_allocation(catalog, population, 2, random_state=seed)
        index = PossessionIndex(allocation, cache_window=20)
        matcher = ConnectionMatcher(population.upload_slots(c))
        requests = RequestSet(
            StripeRequest(
                stripe_id=int(rng.integers(catalog.total_stripes)),
                request_time=int(rng.integers(3)),
                box_id=int(rng.integers(12)),
            )
            for _ in range(num_requests)
        )
        result = matcher.match(requests, index, current_time=3)
        # Per-box load never exceeds ⌊u·c⌋.
        assert np.all(result.box_load <= population.upload_slots(c))
        # Matched count consistent with the assignment vector.
        assert (result.assignment >= 0).sum() == result.matched
        # Every assignment is a possessing box other than the requester.
        for idx, box in enumerate(result.assignment):
            if box < 0:
                continue
            request = requests[idx]
            assert int(box) != request.box_id
            assert int(box) in index.servers_for(request, current_time=3)
        # Feasible iff everything matched.
        assert result.feasible == (result.matched == len(requests))


class TestSwarmGrowthInvariants:
    @given(size=st.integers(0, 10_000), mu=st.floats(1.0, 4.0, allow_nan=False))
    def test_max_new_members_respects_ceiling(self, size, mu):
        joiners = max_new_members(size, mu)
        assert size + joiners <= math.ceil(max(size, 1) * mu)
        # Adding one more would break the bound (when the bound binds).
        assert size + joiners + 1 > math.ceil(max(size, 1) * mu)


class TestBoundInvariants:
    @slow_settings
    @given(
        u=st.floats(1.1, 4.0, allow_nan=False),
        d=st.floats(1.0, 16.0, allow_nan=False),
        mu=st.floats(1.0, 2.0, allow_nan=False),
    )
    def test_theorem1_design_internal_consistency(self, u, d, mu):
        design = th.design_homogeneous(n=1000, u=u, d=d, mu=mu)
        assert design.c > (2 * mu**2 - 1) / (u - 1) - 1e-9
        assert design.nu > 0
        assert design.u_prime > 1
        assert design.k >= 1
        assert design.catalog_size == int(d * 1000 // design.k)

    @slow_settings
    @given(
        i=st.integers(1, 200),
        i1_frac=st.floats(0.0, 1.0),
        k=st.integers(1, 10),
    )
    def test_lemma4_log_probability_is_a_log_probability(self, i, i1_frac, k):
        i1 = max(1, int(i * i1_frac))
        value = lemma4_log_probability(
            i=i, i1=min(i1, i), n=100, c=5, u_prime=2.0, k=k, nu=0.05
        )
        assert value <= 0.0

    @slow_settings
    @given(k=st.integers(1, 500))
    def test_first_moment_bound_is_probability(self, k):
        bound = first_moment_bound_paper(n=50, c=5, u_prime=2.0, d_prime=4.0, k=k, nu=0.0355)
        assert 0.0 <= bound <= 1.0
