"""Tests for repro.core.video (videos, stripes, catalogs)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.video import Catalog, Stripe, Video, split_round_robin


class TestVideo:
    def test_stripe_ids_are_contiguous(self):
        video = Video(video_id=3, num_stripes=4, duration=100)
        assert video.stripe_ids == (12, 13, 14, 15)

    def test_stripe_accessor(self):
        video = Video(video_id=2, num_stripes=3, duration=50)
        stripe = video.stripe(1)
        assert stripe.stripe_id == 7
        assert stripe.video_id == 2
        assert stripe.index == 1
        assert stripe.rate == pytest.approx(1 / 3)

    def test_stripe_index_out_of_range(self):
        video = Video(video_id=0, num_stripes=3, duration=50)
        with pytest.raises(ValueError):
            video.stripe(3)

    def test_stripes_tuple(self):
        video = Video(video_id=1, num_stripes=4, duration=10)
        stripes = video.stripes
        assert len(stripes) == 4
        assert all(isinstance(s, Stripe) for s in stripes)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Video(video_id=-1, num_stripes=3, duration=10)
        with pytest.raises(ValueError):
            Video(video_id=0, num_stripes=0, duration=10)
        with pytest.raises(ValueError):
            Video(video_id=0, num_stripes=3, duration=0)


class TestStripe:
    def test_position_at(self):
        stripe = Stripe(stripe_id=5, video_id=1, index=1, rate=0.25, duration=20)
        assert stripe.position_at(request_time=3, current_time=10) == 7

    def test_position_requires_causal_times(self):
        stripe = Stripe(stripe_id=5, video_id=1, index=1, rate=0.25, duration=20)
        with pytest.raises(ValueError):
            stripe.position_at(request_time=10, current_time=3)

    def test_is_finished(self):
        stripe = Stripe(stripe_id=5, video_id=1, index=1, rate=0.25, duration=20)
        assert not stripe.is_finished(request_time=0, current_time=19)
        assert stripe.is_finished(request_time=0, current_time=20)


class TestCatalog:
    def test_sizes(self):
        catalog = Catalog(num_videos=10, num_stripes=4, duration=30)
        assert catalog.num_videos == 10
        assert catalog.num_stripes_per_video == 4
        assert catalog.total_stripes == 40
        assert catalog.chunk_size == pytest.approx(0.25)
        assert len(catalog) == 10

    def test_video_lookup(self):
        catalog = Catalog(num_videos=10, num_stripes=4, duration=30)
        video = catalog.video(7)
        assert video.video_id == 7
        assert video.duration == 30

    def test_video_out_of_range(self):
        catalog = Catalog(num_videos=10, num_stripes=4)
        with pytest.raises(ValueError):
            catalog.video(10)

    def test_stripe_round_trip(self):
        catalog = Catalog(num_videos=6, num_stripes=5, duration=30)
        for video_id in range(6):
            for index in range(5):
                sid = catalog.stripe_id(video_id, index)
                assert catalog.video_of_stripe(sid) == video_id
                assert catalog.stripe_index_of(sid) == index
                stripe = catalog.stripe(sid)
                assert stripe.video_id == video_id
                assert stripe.index == index

    def test_stripe_out_of_range(self):
        catalog = Catalog(num_videos=2, num_stripes=3)
        with pytest.raises(ValueError):
            catalog.stripe(6)
        with pytest.raises(ValueError):
            catalog.stripe_id(2, 0)
        with pytest.raises(ValueError):
            catalog.stripe_id(0, 3)
        with pytest.raises(ValueError):
            catalog.video_of_stripe(6)

    def test_stripes_of_video(self):
        catalog = Catalog(num_videos=4, num_stripes=3)
        np.testing.assert_array_equal(catalog.stripes_of_video(2), [6, 7, 8])

    def test_stripe_ids_of_videos(self):
        catalog = Catalog(num_videos=4, num_stripes=2)
        np.testing.assert_array_equal(
            catalog.stripe_ids_of_videos([0, 3]), [0, 1, 6, 7]
        )

    def test_stripe_ids_of_videos_out_of_range(self):
        catalog = Catalog(num_videos=4, num_stripes=2)
        with pytest.raises(ValueError):
            catalog.stripe_ids_of_videos([4])

    def test_iteration_yields_all_videos(self):
        catalog = Catalog(num_videos=5, num_stripes=2)
        assert [v.video_id for v in catalog] == list(range(5))

    @given(m=st.integers(1, 40), c=st.integers(1, 16))
    def test_stripe_ids_partition_videos(self, m, c):
        catalog = Catalog(num_videos=m, num_stripes=c)
        seen = set()
        for video_id in range(m):
            ids = catalog.stripes_of_video(video_id)
            assert len(ids) == c
            seen.update(int(x) for x in ids)
        assert seen == set(range(m * c))


class TestSplitRoundRobin:
    def test_partition(self):
        stripes = split_round_robin(10, 3)
        assert len(stripes) == 3
        all_packets = np.concatenate(stripes)
        assert sorted(all_packets.tolist()) == list(range(10))

    def test_round_robin_assignment(self):
        stripes = split_round_robin(9, 3)
        np.testing.assert_array_equal(stripes[0], [0, 3, 6])
        np.testing.assert_array_equal(stripes[1], [1, 4, 7])
        np.testing.assert_array_equal(stripes[2], [2, 5, 8])

    def test_empty(self):
        stripes = split_round_robin(0, 4)
        assert all(s.size == 0 for s in stripes)

    @given(packets=st.integers(0, 300), c=st.integers(1, 12))
    def test_stripe_sizes_are_balanced(self, packets, c):
        stripes = split_round_robin(packets, c)
        sizes = [s.size for s in stripes]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == packets
