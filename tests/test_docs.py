"""Documentation verification: doctests in docs/*.md and internal links.

Every fenced code example in the hand-written docs pages runs under
doctest here, so the documented API cannot drift from the code (the CI
``docs`` job additionally runs ``pytest --doctest-glob='*.md' docs``).
The link check walks README.md, EXPERIMENTS.md and every docs page and
asserts that relative link targets exist in the repository.
"""

from __future__ import annotations

import doctest
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"

#: Hand-written pages (doctested).  docs/results/ is generated output —
#: tables, no examples — and is covered by the orchestrate diff check.
DOC_PAGES = sorted(p.name for p in DOCS_DIR.glob("*.md"))

#: Files whose relative links must resolve.
LINKED_FILES = [
    REPO_ROOT / "README.md",
    REPO_ROOT / "EXPERIMENTS.md",
    *sorted(DOCS_DIR.glob("*.md")),
    *sorted((DOCS_DIR / "results").glob("*.md")),
]

_LINK = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")


def test_docs_directory_has_the_expected_pages():
    assert {
        "architecture.md",
        "api.md",
        "core.md",
        "simulation.md",
        "scenarios.md",
        "analysis.md",
        "orchestrate.md",
    } <= set(DOC_PAGES)


@pytest.mark.parametrize("page", DOC_PAGES)
def test_docs_examples_execute(page):
    """Run every ``>>>`` example of a docs page under doctest."""
    results = doctest.testfile(
        str(DOCS_DIR / page),
        module_relative=False,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
    )
    assert results.failed == 0, f"{results.failed} doctest failures in docs/{page}"


def test_api_reference_actually_contains_examples():
    """The API page must stay executable documentation, not prose."""
    parser = doctest.DocTestParser()
    text = (DOCS_DIR / "api.md").read_text(encoding="utf-8")
    examples = parser.get_examples(text)
    assert len(examples) >= 20


@pytest.mark.parametrize(
    "path", LINKED_FILES, ids=[str(p.relative_to(REPO_ROOT)) for p in LINKED_FILES]
)
def test_internal_links_resolve(path):
    text = path.read_text(encoding="utf-8")
    broken = []
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue  # in-page anchor
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{path.relative_to(REPO_ROOT)}: broken links {broken}"


def test_readme_links_docs_subsystem_pages():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for page in ("docs/architecture.md", "docs/api.md", "docs/orchestrate.md"):
        assert page in readme, f"README.md must link {page}"


def test_no_stale_pre_service_layer_references():
    """Pre-PR-3 spellings must not resurface in the front-door docs."""
    for name in ("README.md", "EXPERIMENTS.md"):
        text = (REPO_ROOT / name).read_text(encoding="utf-8")
        assert "from repro import VodSimulator" not in text, name
        assert "repro.VodSimulator()" not in text, name
