"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import (
    as_generator,
    choice_without_replacement,
    derive_seed,
    permutation,
    spawn_generators,
    weighted_choice,
)


class TestAsGenerator:
    def test_int_seed_is_deterministic(self):
        a = as_generator(42).integers(1 << 30)
        b = as_generator(42).integers(1 << 30)
        assert a == b

    def test_different_seeds_differ(self):
        a = as_generator(1).integers(1 << 30, size=8)
        b = as_generator(2).integers(1 << 30, size=8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(5)
        assert isinstance(as_generator(seq), np.random.Generator)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            as_generator(-1)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            as_generator("seed")


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 5)
        assert len(gens) == 5

    def test_children_are_independent_but_reproducible(self):
        a = [g.integers(1 << 30) for g in spawn_generators(7, 3)]
        b = [g.integers(1 << 30) for g in spawn_generators(7, 3)]
        assert a == b
        assert len(set(a)) == 3

    def test_zero_count(self):
        assert spawn_generators(3, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(3, -1)

    def test_generator_master(self):
        gens = spawn_generators(np.random.default_rng(1), 2)
        assert len(gens) == 2

    def test_bad_master_type(self):
        with pytest.raises(TypeError):
            spawn_generators(object(), 2)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(9, stream=2) == derive_seed(9, stream=2)

    def test_streams_differ(self):
        assert derive_seed(9, stream=0) != derive_seed(9, stream=1)


class TestHelpers:
    def test_permutation_is_permutation(self):
        p = permutation(3, 50)
        assert sorted(p.tolist()) == list(range(50))

    def test_permutation_negative_size(self):
        with pytest.raises(ValueError):
            permutation(3, -1)

    def test_choice_without_replacement_distinct(self):
        values = choice_without_replacement(1, population=20, count=10)
        assert len(set(values.tolist())) == 10
        assert values.max() < 20

    def test_choice_without_replacement_too_many(self):
        with pytest.raises(ValueError):
            choice_without_replacement(1, population=5, count=6)

    def test_weighted_choice_respects_zero_weight(self):
        picks = weighted_choice(0, [0.0, 1.0], size=100)
        assert np.all(picks == 1)

    def test_weighted_choice_validations(self):
        with pytest.raises(ValueError):
            weighted_choice(0, [])
        with pytest.raises(ValueError):
            weighted_choice(0, [-1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_choice(0, [0.0, 0.0])

    def test_weighted_choice_scalar_mode(self):
        out = weighted_choice(0, [1.0, 1.0])
        assert out.shape == (1,)
