"""Tests for repro.core.heterogeneous (Section 4: balance, compensation, relaying)."""

import math

import numpy as np
import pytest

from repro.core.heterogeneous import (
    RELAYED_START_UP_DELAY_ROUNDS,
    CompensationError,
    CompensationPlan,
    RelayedPreloadingScheduler,
    compute_compensation_plan,
    direct_stripe_budget,
    is_balanced,
    is_upload_compensable,
)
from repro.core.parameters import BoxPopulation, proportional_population, two_class_population
from repro.core.preloading import Demand
from repro.core.video import Catalog


def rich_poor_population(n_rich=5, n_poor=5, u_rich=4.0, u_poor=0.5):
    uploads = [u_rich] * n_rich + [u_poor] * n_poor
    storages = [u * 2.5 for u in uploads]
    return BoxPopulation(uploads, storages)


class TestDirectStripeBudget:
    def test_formula(self):
        assert direct_stripe_budget(upload=0.8, c=100, mu=1.2) == int(
            math.floor(0.8 * 100 - 4 * 1.2**4)
        )

    def test_clamped_at_zero(self):
        assert direct_stripe_budget(upload=0.01, c=10, mu=1.5) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            direct_stripe_budget(-0.1, 10, 1.2)
        with pytest.raises(ValueError):
            direct_stripe_budget(0.5, 0, 1.2)


class TestCompensationPlan:
    def test_plan_structure(self):
        pop = rich_poor_population()
        plan = compute_compensation_plan(pop, u_star=1.5)
        assert plan.num_boxes == pop.n
        # Every poor box has a rich relay; every rich box has none.
        for b in range(pop.n):
            if pop.uploads[b] < 1.5:
                relay = plan.relay(b)
                assert relay is not None
                assert pop.uploads[relay] >= 1.5
                assert plan.is_poor(b)
            else:
                assert plan.relay(b) is None
                assert not plan.is_poor(b)

    def test_reservation_amounts(self):
        pop = rich_poor_population()
        u_star = 1.5
        plan = compute_compensation_plan(pop, u_star)
        # Total reserved equals the sum of per-poor-box needs (all positive here).
        expected = sum(
            u_star + 1 - 2 * u for u in pop.uploads if u < u_star
        )
        assert plan.reserved_upload.sum() == pytest.approx(expected)

    def test_rich_boxes_keep_u_star_after_reservation(self):
        pop = rich_poor_population()
        u_star = 1.5
        plan = compute_compensation_plan(pop, u_star)
        residual = plan.residual_uploads(pop)
        for a in range(pop.n):
            if pop.uploads[a] >= u_star:
                assert residual[a] >= u_star - 1e-9

    def test_backed_boxes_partition_poor_boxes(self):
        pop = rich_poor_population()
        plan = compute_compensation_plan(pop, u_star=1.5)
        backed = []
        for a in pop.rich_boxes(1.5):
            backed.extend(plan.backed_boxes(int(a)).tolist())
        assert sorted(backed) == pop.poor_boxes(1.5).tolist()

    def test_no_poor_boxes_gives_empty_plan(self):
        pop = proportional_population([2.0, 3.0, 4.0], 2.5)
        plan = compute_compensation_plan(pop, u_star=1.5)
        assert np.all(plan.relay_of == -1)
        assert plan.reserved_upload.sum() == 0

    def test_no_rich_boxes_raises(self):
        pop = proportional_population([0.5, 0.6], 2.5)
        with pytest.raises(CompensationError):
            compute_compensation_plan(pop, u_star=1.5)

    def test_insufficient_headroom_raises(self):
        # One rich box barely above u*, many poor boxes.
        pop = BoxPopulation([1.6] + [0.2] * 10, [4.0] + [0.5] * 10)
        with pytest.raises(CompensationError):
            compute_compensation_plan(pop, u_star=1.5)

    def test_is_upload_compensable(self):
        assert is_upload_compensable(rich_poor_population(), 1.5)
        assert not is_upload_compensable(
            BoxPopulation([1.6] + [0.2] * 10, [4.0] + [0.5] * 10), 1.5
        )

    def test_u_star_must_exceed_one(self):
        with pytest.raises(ValueError):
            compute_compensation_plan(rich_poor_population(), u_star=1.0)

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            CompensationPlan(
                u_star=1.5,
                relay_of=np.array([1, -1]),
                reserved_upload=np.array([0.0]),
            )

    def test_is_balanced_combines_both_conditions(self):
        pop = rich_poor_population()  # proportional: d_b = 2.5 u_b
        assert is_balanced(pop, u_star=1.5)
        # Break storage balance: a box with d/u < 2.
        unbalanced = BoxPopulation([4.0, 0.5], [4.0, 1.25])
        assert not is_balanced(unbalanced, u_star=1.5)


class TestRelayedPreloadingScheduler:
    def setup_scheduler(self, c=8, mu=1.1):
        catalog = Catalog(num_videos=4, num_stripes=c, duration=30)
        population = rich_poor_population(n_rich=4, n_poor=4, u_rich=4.0, u_poor=0.5)
        plan = compute_compensation_plan(population, u_star=1.5)
        scheduler = RelayedPreloadingScheduler(catalog, population, plan, mu=mu)
        return catalog, population, plan, scheduler

    def test_rich_box_follows_doubled_homogeneous_timeline(self):
        catalog, population, plan, scheduler = self.setup_scheduler()
        rich_box = int(population.rich_boxes(1.5)[0])
        immediate = scheduler.on_demand(Demand(time=2, box_id=rich_box, video_id=0))
        assert len(immediate) == 1
        assert immediate[0].box_id == rich_box
        assert immediate[0].is_preload
        assert scheduler.requests_due(3) == []
        postponed = scheduler.requests_due(4)
        assert len(postponed) == catalog.num_stripes_per_video - 1
        assert all(r.box_id == rich_box for r in postponed)

    def test_poor_box_preload_is_issued_by_relay(self):
        catalog, population, plan, scheduler = self.setup_scheduler()
        poor_box = int(population.poor_boxes(1.5)[0])
        relay = plan.relay(poor_box)
        immediate = scheduler.on_demand(Demand(time=2, box_id=poor_box, video_id=0))
        assert len(immediate) == 1
        assert immediate[0].box_id == relay
        assert immediate[0].is_preload

    def test_poor_box_request_split_between_direct_and_relay(self):
        catalog, population, plan, scheduler = self.setup_scheduler()
        poor_box = int(population.poor_boxes(1.5)[0])
        relay = plan.relay(poor_box)
        c = catalog.num_stripes_per_video
        mu = 1.1
        scheduler.on_demand(Demand(time=2, box_id=poor_box, video_id=0))
        direct = scheduler.requests_due(4)
        via_relay = scheduler.requests_due(5)
        c_b = direct_stripe_budget(0.5, c, mu)
        assert len(direct) == min(c_b, c - 1)
        assert all(r.box_id == poor_box for r in direct)
        assert len(via_relay) == c - 1 - len(direct)
        assert all(r.box_id == relay for r in via_relay)
        # All c stripes are covered exactly once across the whole timeline.
        total = {r.stripe_id for r in direct + via_relay} | {
            catalog.stripe_id(0, scheduler.swarm_entry_count(0) - 1 % c)
        }
        assert len(total) >= c - 1

    def test_relay_cache_events_cover_preload_and_forwarded_stripes(self):
        catalog, population, plan, scheduler = self.setup_scheduler()
        poor_box = int(population.poor_boxes(1.5)[0])
        relay = plan.relay(poor_box)
        scheduler.on_demand(Demand(time=2, box_id=poor_box, video_id=0))
        preload_cache = scheduler.relay_cache_events_due(3)
        assert len(preload_cache) == 1
        assert preload_cache[0][0] == relay
        forwarded_cache = scheduler.relay_cache_events_due(5)
        assert all(box == relay for box, _ in forwarded_cache)

    def test_preload_counter_shared_across_rich_and_poor(self):
        catalog, population, plan, scheduler = self.setup_scheduler()
        c = catalog.num_stripes_per_video
        boxes = list(range(population.n))
        indices = []
        for box in boxes:
            immediate = scheduler.on_demand(Demand(time=0, box_id=box, video_id=1))
            indices.append(catalog.stripe_index_of(immediate[0].stripe_id))
        assert indices == [p % c for p in range(len(boxes))]

    def test_start_up_delay_constant(self):
        _, _, _, scheduler = self.setup_scheduler()
        assert scheduler.start_up_delay == RELAYED_START_UP_DELAY_ROUNDS

    def test_reset(self):
        catalog, population, plan, scheduler = self.setup_scheduler()
        scheduler.on_demand(Demand(time=0, box_id=0, video_id=0))
        scheduler.reset()
        assert scheduler.demands_seen == ()
        assert scheduler.requests_due(2) == []
        assert scheduler.swarm_entry_count(0) == 0
