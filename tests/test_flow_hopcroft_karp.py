"""Cross-validation of the Hopcroft–Karp kernel against the max-flow solvers."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.flow import MAX_FLOW_SOLVERS
from repro.flow.bipartite import solve_b_matching
from repro.flow.hopcroft_karp import csr_from_edges, hopcroft_karp_matching
from repro.flow.network import build_bipartite_network

solver_settings = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def random_instance(seed):
    """A random bipartite unit-demand instance (possibly infeasible)."""
    rng = np.random.default_rng(seed)
    num_left = int(rng.integers(0, 14))
    num_right = int(rng.integers(1, 10))
    caps = [int(rng.integers(0, 4)) for _ in range(num_right)]
    density = float(rng.uniform(0.1, 0.7))
    edges = [
        (i, j)
        for i in range(num_left)
        for j in range(num_right)
        if rng.random() < density
    ]
    return num_left, num_right, edges, caps, rng


def assert_valid_assignment(result, num_right, edges, caps):
    """The assignment respects adjacency and right capacities."""
    edge_set = set(edges)
    loads = [0] * num_right
    for left, right in enumerate(result.assignment):
        right = int(right)
        if right >= 0:
            assert (left, right) in edge_set
            loads[right] += 1
    assert all(load <= cap for load, cap in zip(loads, caps))
    assert result.matched == sum(loads)
    assert result.feasible == (result.matched == len(result.assignment))


class TestKernelAgainstMaxFlowSolvers:
    @solver_settings
    @given(seed=st.integers(0, 100_000))
    def test_all_four_solvers_agree_on_flow_value(self, seed):
        """Edmonds–Karp, Dinic, push–relabel and HK find the same optimum."""
        num_left, num_right, edges, caps, _ = random_instance(seed)
        indptr, indices = csr_from_edges(num_left, num_right, edges)
        hk = hopcroft_karp_matching(num_left, num_right, indptr, indices, caps)
        values = {"hopcroft_karp": hk.matched}
        for name, solver in MAX_FLOW_SOLVERS.items():
            network, source, sink = build_bipartite_network(
                num_left=num_left,
                num_right=num_right,
                edges=edges,
                left_capacities=[1] * num_left,
                right_capacities=caps,
            )
            values[name] = solver(network, source, sink)
        assert len(set(values.values())) == 1, values
        assert_valid_assignment(hk, num_right, edges, caps)

    @solver_settings
    @given(seed=st.integers(0, 100_000))
    def test_solve_b_matching_methods_agree(self, seed):
        """The dispatching front-end returns equivalent results per method."""
        num_left, num_right, edges, caps, _ = random_instance(seed)
        dinic = solve_b_matching(num_left, num_right, edges, caps, method="dinic")
        hk = solve_b_matching(num_left, num_right, edges, caps, method="hopcroft_karp")
        auto = solve_b_matching(num_left, num_right, edges, caps, method="auto")
        assert dinic.matched == hk.matched == auto.matched
        assert dinic.feasible == hk.feasible == auto.feasible
        assert set(dinic.deficient_left) == set() or len(hk.deficient_left) == len(
            dinic.deficient_left
        )
        assert_valid_assignment(hk, num_right, edges, caps)

    @solver_settings
    @given(seed=st.integers(0, 100_000))
    def test_witness_is_a_hall_violation(self, seed):
        """The infeasibility witness genuinely violates the Hall condition."""
        num_left, num_right, edges, caps, _ = random_instance(seed)
        hk = solve_b_matching(num_left, num_right, edges, caps, method="hopcroft_karp")
        if hk.feasible:
            assert hk.unsatisfied_witness is None
            return
        witness = hk.unsatisfied_witness
        assert witness is not None and len(witness) >= 1
        neighbourhood = set()
        for left in witness:
            neighbourhood |= {j for (i, j) in edges if i == left}
        assert sum(caps[j] for j in neighbourhood) < len(witness)

    @solver_settings
    @given(seed=st.integers(0, 100_000))
    def test_warm_start_never_changes_the_optimum(self, seed):
        """Any warm start — exact, stale or garbage — yields the same optimum."""
        num_left, num_right, edges, caps, rng = random_instance(seed)
        indptr, indices = csr_from_edges(num_left, num_right, edges)
        cold = hopcroft_karp_matching(num_left, num_right, indptr, indices, caps)
        warm_starts = [
            cold.assignment,
            np.full(num_left, -1, dtype=np.int64),
            rng.integers(-1, num_right, size=num_left),
        ]
        for warm in warm_starts:
            again = hopcroft_karp_matching(
                num_left, num_right, indptr, indices, caps, initial_assignment=warm
            )
            assert again.matched == cold.matched
            assert again.feasible == cold.feasible
            assert_valid_assignment(again, num_right, edges, caps)


class TestKernelEdgeCases:
    def test_empty_instance(self):
        result = hopcroft_karp_matching(0, 3, [0], [], [1, 1, 1])
        assert result.feasible
        assert result.matched == 0
        assert result.unsatisfied_witness is None

    def test_no_edges_is_infeasible(self):
        indptr, indices = csr_from_edges(2, 2, [])
        result = hopcroft_karp_matching(2, 2, indptr, indices, [1, 1])
        assert not result.feasible
        assert result.matched == 0
        assert set(result.deficient_left) == {0, 1}
        assert result.unsatisfied_witness is not None

    def test_zero_capacity_right_is_useless(self):
        indptr, indices = csr_from_edges(1, 1, [(0, 0)])
        result = hopcroft_karp_matching(1, 1, indptr, indices, [0])
        assert not result.feasible
        assert result.assignment[0] == -1

    def test_duplicate_edges_are_harmless(self):
        indptr, indices = csr_from_edges(2, 1, [(0, 0), (0, 0), (1, 0)])
        result = hopcroft_karp_matching(2, 1, indptr, indices, [2])
        assert result.feasible
        assert result.matched == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            hopcroft_karp_matching(2, 1, [0, 1], [0], [1, 1])  # wrong cap length
        with pytest.raises(ValueError):
            hopcroft_karp_matching(1, 1, [0], [], [-1])  # negative capacity
        with pytest.raises(ValueError):
            hopcroft_karp_matching(2, 1, [0, 0], [], [1])  # wrong indptr length
        with pytest.raises(ValueError):
            hopcroft_karp_matching(
                1, 1, [0, 0], [], [1], initial_assignment=[0, 0]
            )  # wrong warm-start length
        with pytest.raises(ValueError):
            csr_from_edges(1, 1, [(1, 0)])
        with pytest.raises(ValueError):
            csr_from_edges(1, 1, [(0, 5)])

    def test_solve_b_matching_rejects_hk_with_general_demands(self):
        with pytest.raises(ValueError):
            solve_b_matching(
                1, 1, [(0, 0)], [2], left_demands=[2], method="hopcroft_karp"
            )

    def test_solve_b_matching_auto_falls_back_for_general_demands(self):
        result = solve_b_matching(
            num_left=2,
            num_right=2,
            edges=[(0, 0), (0, 1), (1, 1)],
            right_capacities=[1, 2],
            left_demands=[2, 1],
            method="auto",
        )
        assert result.feasible
        assert result.matched == 3

    def test_solve_b_matching_unknown_method(self):
        with pytest.raises(ValueError):
            solve_b_matching(1, 1, [(0, 0)], [1], method="bogus")

    def test_large_deficit_uses_phase_path(self):
        # Many unmatched lefts (far above the Kuhn threshold) exercise the
        # layered BFS/DFS phases and the witness extraction.
        num_left, num_right = 60, 3
        edges = [(i, j) for i in range(num_left) for j in range(num_right)]
        indptr, indices = csr_from_edges(num_left, num_right, edges)
        result = hopcroft_karp_matching(num_left, num_right, indptr, indices, [2, 2, 2])
        assert result.matched == 6
        assert not result.feasible
        assert result.unsatisfied_witness is not None
        assert len(result.unsatisfied_witness) == num_left


class TestStableRightOrder:
    """The radix-friendly int32 argsort must not wrap large node ids."""

    def test_small_ids_use_int32_and_stay_stable(self):
        from repro.flow.hopcroft_karp import _stable_right_order

        seq = np.array([5, 2, 5, 2, 0], dtype=np.int64)
        expected = np.argsort(seq, kind="stable")
        assert list(_stable_right_order(seq)) == list(expected)

    def test_ids_past_int32_sort_correctly(self):
        from repro.flow.hopcroft_karp import _stable_right_order

        boundary = np.iinfo(np.int32).max
        # Just past the int32 boundary: the old unconditional cast wrapped
        # these negative and scrambled the stable CSR adoption order.
        seq = np.array(
            [boundary + 1, 3, boundary + 1, 2, boundary + 2], dtype=np.int64
        )
        expected = np.argsort(seq, kind="stable")
        assert list(_stable_right_order(seq)) == list(expected)
        wrapped = np.argsort(seq.astype(np.int32), kind="stable")
        assert list(wrapped) != list(expected)

    def test_boundary_id_still_uses_the_cast(self):
        from repro.flow.hopcroft_karp import _stable_right_order

        boundary = np.iinfo(np.int32).max
        seq = np.array([boundary, 0, boundary], dtype=np.int64)
        expected = np.argsort(seq, kind="stable")
        assert list(_stable_right_order(seq)) == list(expected)
