"""Worker-process chaos: the supervised pool and its recovery guarantees.

Exercises the real failure modes — SIGKILLed workers, hangs, persistent
errors — against :func:`repro.orchestrate.supervise.run_supervised` and
the campaign runner built on it, and pins the headline property: a store
recovered from injected worker crashes is byte-identical to a clean one.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.faults.process import (
    InjectedWorkerError,
    maybe_inject_worker_fault,
    parse_fault_env,
)
from repro.orchestrate import get_campaign
from repro.orchestrate.runner import run_campaign
from repro.orchestrate.store import ResultsStore
from repro.orchestrate.supervise import (
    QuarantinedCell,
    SupervisionPolicy,
    run_supervised,
)

# Cheap policy for tests: no real backoff sleeps.
FAST = SupervisionPolicy(max_retries=2, backoff_base=0.0)


# ---------------------------------------------------------------------- #
# Top-level workers (process pools pickle them by reference)
# ---------------------------------------------------------------------- #
def _double(value):
    return value * 2


def _claim(marker: str) -> bool:
    """Atomically claim ``marker``; True for exactly one caller ever."""
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _crash_once(payload):
    marker, value = payload
    if _claim(marker):
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 2


def _hang_once(payload):
    marker, value = payload
    if _claim(marker):
        time.sleep(60.0)
    return value * 2


def _crash_bad_always(payload):
    if payload == "bad":
        os.kill(os.getpid(), signal.SIGKILL)
    return payload.upper()


def _always_fail(payload):
    raise ValueError(f"cannot process {payload!r}")


# ---------------------------------------------------------------------- #
# run_supervised
# ---------------------------------------------------------------------- #
class TestRunSupervised:
    def test_happy_path_preserves_order_and_delivers_callbacks(self):
        seen = []
        results, quarantined = run_supervised(
            [1, 2, 3, 4, 5],
            worker=_double,
            max_workers=2,
            policy=FAST,
            on_complete=lambda index, result: seen.append((index, result)),
        )
        assert results == [2, 4, 6, 8, 10]
        assert quarantined == []
        assert sorted(seen) == [(0, 2), (1, 4), (2, 6), (3, 8), (4, 10)]

    def test_sigkilled_worker_recovers_without_losing_cells(self, tmp_path):
        marker = str(tmp_path / "crash.marker")
        payloads = [(marker, v) for v in range(4)]
        results, quarantined = run_supervised(
            payloads, worker=_crash_once, max_workers=2, policy=FAST
        )
        assert results == [0, 2, 4, 6]
        assert quarantined == []
        assert os.path.exists(marker)  # the crash really fired

    def test_hung_worker_trips_timeout_and_cell_retries(self, tmp_path):
        marker = str(tmp_path / "hang.marker")
        payloads = [(marker, v) for v in range(3)]
        policy = SupervisionPolicy(cell_timeout=1.0, max_retries=2, backoff_base=0.0)
        start = time.monotonic()
        results, quarantined = run_supervised(
            payloads, worker=_hang_once, max_workers=2, policy=policy
        )
        assert results == [0, 2, 4]
        assert quarantined == []
        assert time.monotonic() - start < 30.0  # never waited out the hang

    def test_deterministic_crasher_is_quarantined_alone(self, tmp_path):
        policy = SupervisionPolicy(max_retries=1, backoff_base=0.0)
        results, quarantined = run_supervised(
            ["a", "bad", "c", "d"],
            worker=_crash_bad_always,
            max_workers=2,
            policy=policy,
            labels=["a", "bad", "c", "d"],
        )
        assert results == ["A", None, "C", "D"]
        assert [q.label for q in quarantined] == ["bad"]
        assert quarantined[0].attempts == 2  # first try + one retry
        assert "died" in quarantined[0].reason

    def test_persistent_error_quarantines_with_reason(self):
        policy = SupervisionPolicy(max_retries=1, backoff_base=0.0)
        results, quarantined = run_supervised(
            ["x"], worker=_always_fail, max_workers=1, policy=policy
        )
        assert results == [None]
        assert len(quarantined) == 1
        assert isinstance(quarantined[0], QuarantinedCell)
        assert quarantined[0].attempts == 2
        assert "ValueError" in quarantined[0].reason

    def test_input_validation(self):
        with pytest.raises(ValueError, match="max_workers"):
            run_supervised([1], worker=_double, max_workers=0)
        with pytest.raises(ValueError, match="one label per payload"):
            run_supervised([1, 2], worker=_double, max_workers=1, labels=["only-one"])


class TestSupervisionPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="cell_timeout"):
            SupervisionPolicy(cell_timeout=0)
        with pytest.raises(ValueError, match="max_retries"):
            SupervisionPolicy(max_retries=-1)

    def test_backoff_doubles_up_to_the_cap(self):
        policy = SupervisionPolicy(backoff_base=0.1, backoff_cap=2.0)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.4)
        assert policy.backoff(6) == pytest.approx(2.0)  # capped


# ---------------------------------------------------------------------- #
# Env-driven worker faults (repro.faults.process)
# ---------------------------------------------------------------------- #
class TestFaultEnv:
    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            parse_fault_env("{nope")
        with pytest.raises(ValueError, match="JSON object"):
            parse_fault_env("[1]")
        with pytest.raises(ValueError, match="fault kind"):
            parse_fault_env('{"worker_meltdown": {}}')
        with pytest.raises(ValueError, match="mode"):
            parse_fault_env('{"worker_error": {"mode": "sometimes"}}')
        with pytest.raises(ValueError, match="marker"):
            parse_fault_env('{"worker_crash": {"mode": "once"}}')

    def test_unset_env_is_a_no_op(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        maybe_inject_worker_fault("cell:anything")

    def test_worker_error_injection_and_label_match(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULTS",
            '{"worker_error": {"mode": "always", "match": "cell:threshold"}}',
        )
        maybe_inject_worker_fault("cell:other")  # filtered out: no fire
        with pytest.raises(InjectedWorkerError, match="cell:threshold"):
            maybe_inject_worker_fault("cell:threshold_formulas")

    def test_once_mode_fires_exactly_once(self, tmp_path, monkeypatch):
        marker = tmp_path / "err.marker"
        monkeypatch.setenv(
            "REPRO_FAULTS",
            '{"worker_error": {"mode": "once", "marker": "%s"}}' % marker,
        )
        with pytest.raises(InjectedWorkerError):
            maybe_inject_worker_fault("cell:x")
        assert marker.exists()
        maybe_inject_worker_fault("cell:x")  # second call: marker claimed


# ---------------------------------------------------------------------- #
# Campaigns under injected chaos
# ---------------------------------------------------------------------- #
class TestCampaignChaos:
    def test_store_recovered_from_crash_is_byte_identical(self, tmp_path, monkeypatch):
        campaign = get_campaign("threshold_formulas")
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        clean = ResultsStore(tmp_path / "clean")
        run_campaign(campaign, clean, n_jobs=2)

        marker = tmp_path / "crash.marker"
        monkeypatch.setenv(
            "REPRO_FAULTS",
            '{"worker_crash": {"mode": "once", "marker": "%s"}}' % marker,
        )
        faulted = ResultsStore(tmp_path / "faulted")
        report = run_campaign(
            campaign,
            faulted,
            n_jobs=2,
            policy=SupervisionPolicy(max_retries=2, backoff_base=0.0),
        )
        assert report.complete
        assert report.quarantined == []
        assert marker.exists()  # the SIGKILL actually happened
        assert clean.keys() == faulted.keys()
        for key in clean.keys():
            assert (
                clean._object_path(key).read_bytes()
                == faulted._object_path(key).read_bytes()
            )

    def test_persistent_worker_error_quarantines_not_raises(self, tmp_path, monkeypatch):
        campaign = get_campaign("threshold_formulas")
        monkeypatch.setenv("REPRO_FAULTS", '{"worker_error": {"mode": "always"}}')
        store = ResultsStore(tmp_path / "store")
        report = run_campaign(
            campaign,
            store,
            n_jobs=2,
            policy=SupervisionPolicy(max_retries=0, backoff_base=0.0),
        )
        assert not report.complete
        assert len(report.quarantined) == len(campaign.cell_keys())
        assert "quarantined" in report.describe()
        assert store.keys() == []  # nothing half-written

    def test_montecarlo_broken_pool_falls_back_to_serial(self, tmp_path):
        from repro.analysis.montecarlo import _run_trials

        marker = str(tmp_path / "mc.marker")
        payloads = [(marker, v) for v in range(4)]
        assert _run_trials(_crash_once, payloads, n_jobs=2) == [0, 2, 4, 6]
        assert os.path.exists(marker)


# ---------------------------------------------------------------------- #
# Orchestrate CLI: interruption and supervision flags
# ---------------------------------------------------------------------- #
class TestCliSupervision:
    def test_keyboard_interrupt_exits_130_with_resume_hint(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.orchestrate import cli

        def interrupted(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "run_campaign", interrupted)
        code = cli.main(["run", "threshold_formulas", "--store", str(tmp_path)])
        assert code == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "resume" in err

    def test_cell_timeout_and_retries_flags_build_the_policy(
        self, tmp_path, monkeypatch
    ):
        from repro.orchestrate import cli
        from repro.orchestrate.runner import ExecutionReport

        captured = {}

        def fake_run(campaign, store, **kwargs):
            captured.update(kwargs)
            return ExecutionReport(campaign=campaign.name)

        monkeypatch.setattr(cli, "run_campaign", fake_run)
        code = cli.main(
            [
                "run",
                "threshold_formulas",
                "--store",
                str(tmp_path),
                "--cell-timeout",
                "7.5",
                "--retries",
                "4",
            ]
        )
        assert code == 0
        assert captured["policy"] == SupervisionPolicy(cell_timeout=7.5, max_retries=4)

    def test_no_flags_means_no_policy(self, tmp_path, monkeypatch):
        from repro.orchestrate import cli
        from repro.orchestrate.runner import ExecutionReport

        captured = {}

        def fake_run(campaign, store, **kwargs):
            captured.update(kwargs)
            return ExecutionReport(campaign=campaign.name)

        monkeypatch.setattr(cli, "run_campaign", fake_run)
        assert cli.main(["run", "threshold_formulas", "--store", str(tmp_path)]) == 0
        assert captured["policy"] is None
