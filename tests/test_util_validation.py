"""Tests for repro.util.validation."""

import math

import pytest

from repro.util.validation import (
    check_in_range,
    check_integer,
    check_non_negative,
    check_non_negative_integer,
    check_positive,
    check_positive_integer,
    check_probability,
    check_real,
)


class TestIntegerChecks:
    def test_check_integer_accepts_int(self):
        assert check_integer(5, "x") == 5

    def test_check_integer_accepts_numpy_int(self):
        import numpy as np

        assert check_integer(np.int64(7), "x") == 7

    def test_check_integer_rejects_bool(self):
        with pytest.raises(TypeError):
            check_integer(True, "x")

    def test_check_integer_rejects_float(self):
        with pytest.raises(TypeError):
            check_integer(3.5, "x")

    def test_positive_integer(self):
        assert check_positive_integer(1, "x") == 1
        with pytest.raises(ValueError):
            check_positive_integer(0, "x")
        with pytest.raises(ValueError):
            check_positive_integer(-3, "x")

    def test_non_negative_integer(self):
        assert check_non_negative_integer(0, "x") == 0
        with pytest.raises(ValueError):
            check_non_negative_integer(-1, "x")


class TestRealChecks:
    def test_check_real(self):
        assert check_real(2.5, "x") == 2.5
        assert check_real(3, "x") == 3.0

    def test_check_real_rejects_nan(self):
        with pytest.raises(ValueError):
            check_real(float("nan"), "x")

    def test_check_real_rejects_bool_and_str(self):
        with pytest.raises(TypeError):
            check_real(True, "x")
        with pytest.raises(TypeError):
            check_real("1.0", "x")

    def test_positive(self):
        assert check_positive(0.1, "x") == 0.1
        with pytest.raises(ValueError):
            check_positive(0.0, "x")

    def test_non_negative(self):
        assert check_non_negative(0.0, "x") == 0.0
        with pytest.raises(ValueError):
            check_non_negative(-0.5, "x")

    def test_probability(self):
        assert check_probability(0.0, "x") == 0.0
        assert check_probability(1.0, "x") == 1.0
        with pytest.raises(ValueError):
            check_probability(1.5, "x")
        with pytest.raises(ValueError):
            check_probability(-0.1, "x")


class TestRangeCheck:
    def test_inclusive_bounds(self):
        assert check_in_range(1.0, "x", 1.0, 2.0) == 1.0
        assert check_in_range(2.0, "x", 1.0, 2.0) == 2.0

    def test_exclusive_low(self):
        with pytest.raises(ValueError):
            check_in_range(1.0, "x", 1.0, 2.0, inclusive_low=False)
        assert check_in_range(1.1, "x", 1.0, 2.0, inclusive_low=False) == 1.1

    def test_exclusive_high(self):
        with pytest.raises(ValueError):
            check_in_range(2.0, "x", 1.0, 2.0, inclusive_high=False)

    def test_infinite_upper_bound(self):
        assert check_in_range(1e12, "x", 1.0, math.inf) == 1e12

    def test_out_of_range_message_names_variable(self):
        with pytest.raises(ValueError, match="mu"):
            check_in_range(0.5, "mu", 1.0, 2.0)
