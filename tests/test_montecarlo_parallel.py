"""Parallel Monte-Carlo driver: determinism, seed handling and detail types."""

import numpy as np
import pytest

from repro.analysis.montecarlo import (
    estimate_simulation_failure_probability,
    estimate_static_obstruction_probability,
    find_max_feasible_catalog,
)
from repro.core.parameters import homogeneous_population
from repro.core.video import Catalog
from repro.util.rng import spawn_generators, spawn_seed_sequences
from repro.workloads.flashcrowd import FlashCrowdWorkload


class FlashCrowdFactory:
    """Module-level picklable workload factory for process-pool trials."""

    def __init__(self, mu):
        self.mu = mu

    def __call__(self, rng):
        return FlashCrowdWorkload(mu=self.mu, random_state=rng)


STATIC_KWARGS = dict(
    n=24, u=1.5, d=3.0, c=3, k=1, num_cold_videos=[8], trials=6, random_state=13
)


class TestParallelDeterminism:
    def test_static_estimator_parallel_matches_serial(self):
        serial = estimate_static_obstruction_probability(**STATIC_KWARGS)
        parallel = estimate_static_obstruction_probability(**STATIC_KWARGS, n_jobs=2)
        assert serial.failures == parallel.failures
        assert serial.failure_probability == parallel.failure_probability
        assert serial.details == parallel.details

    def test_simulation_estimator_parallel_matches_serial(self):
        population = homogeneous_population(20, u=1.2, d=2.5)
        catalog = Catalog(num_videos=10, num_stripes=3, duration=15)
        kwargs = dict(
            population=population,
            catalog=catalog,
            k=2,
            mu=1.5,
            workload_factory=FlashCrowdFactory(mu=1.5),
            num_rounds=5,
            trials=4,
            random_state=3,
        )
        serial = estimate_simulation_failure_probability(**kwargs)
        parallel = estimate_simulation_failure_probability(**kwargs, n_jobs=2)
        assert serial.failures == parallel.failures
        assert serial.details == parallel.details

    def test_n_jobs_validation(self):
        with pytest.raises(ValueError):
            estimate_static_obstruction_probability(**STATIC_KWARGS, n_jobs=0)
        # Only -1 means "all cores"; other negatives are rejected rather
        # than silently oversubscribing.
        with pytest.raises(ValueError):
            estimate_static_obstruction_probability(**STATIC_KWARGS, n_jobs=-2)

    def test_dinic_oracle_agrees_with_default_solver(self):
        fast = estimate_static_obstruction_probability(**STATIC_KWARGS)
        oracle = estimate_static_obstruction_probability(**STATIC_KWARGS, solver="dinic")
        assert fast.failures == oracle.failures
        assert fast.details == oracle.details


class TestDetailTypes:
    def test_static_details_are_floats(self):
        """`worst_unmatched` (and every other detail) is coerced to float."""
        result = estimate_static_obstruction_probability(**STATIC_KWARGS)
        assert result.failures > 0  # k=1 at this size does fail sometimes
        for row in result.details:
            for key, value in row.items():
                assert isinstance(value, float), (key, type(value))
        assert any(row["worst_unmatched"] > 0 for row in result.details)

    def test_simulation_details_are_floats(self):
        population = homogeneous_population(20, u=1.2, d=2.5)
        catalog = Catalog(num_videos=10, num_stripes=3, duration=15)
        result = estimate_simulation_failure_probability(
            population=population,
            catalog=catalog,
            k=2,
            mu=1.5,
            workload_factory=FlashCrowdFactory(mu=1.5),
            num_rounds=4,
            trials=3,
            random_state=1,
        )
        for row in result.details:
            for key, value in row.items():
                assert isinstance(value, float), (key, type(value))


class TestSeedHandling:
    def test_find_max_feasible_catalog_accepts_generator(self):
        """A np.random.Generator master seed no longer crashes the search."""
        summary = find_max_feasible_catalog(
            n=24,
            u=1.5,
            d=2.0,
            c=3,
            k=3,
            mu=1.5,
            workload_factory=FlashCrowdFactory(mu=1.5),
            num_rounds=4,
            trials_per_point=2,
            random_state=np.random.default_rng(3),
            m_min=2,
        )
        assert 0 < summary["max_feasible_catalog"] <= summary["storage_cap"]

    def test_find_max_feasible_catalog_reproducible_for_fixed_seed(self):
        kwargs = dict(
            n=24,
            u=1.5,
            d=2.0,
            c=3,
            k=3,
            mu=1.5,
            workload_factory=FlashCrowdFactory(mu=1.5),
            num_rounds=4,
            trials_per_point=2,
            m_min=2,
        )
        first = find_max_feasible_catalog(**kwargs, random_state=17)
        second = find_max_feasible_catalog(**kwargs, random_state=17)
        assert first == second

    def test_spawn_seed_sequences_match_spawn_generators(self):
        """Both spawners derive the same child streams from one master seed."""
        seqs = spawn_seed_sequences(99, 4)
        gens = spawn_generators(99, 4)
        for seq, gen in zip(seqs, gens):
            expected = np.random.default_rng(seq)
            assert expected.integers(1 << 30) == gen.integers(1 << 30)


def _sim_kwargs():
    return dict(
        population=homogeneous_population(20, u=1.2, d=2.5),
        catalog=Catalog(num_videos=10, num_stripes=3, duration=15),
        k=2,
        mu=1.5,
        workload_factory=FlashCrowdFactory(mu=1.5),
        num_rounds=5,
        trials=4,
    )


def _catalog_kwargs():
    return dict(
        n=16,
        u=1.5,
        d=2.0,
        c=3,
        k=2,
        mu=1.5,
        workload_factory=FlashCrowdFactory(mu=1.5),
        num_rounds=4,
        trials_per_point=3,
        m_max=8,
    )


SEED_SPECS = [
    ("int", lambda seed: seed),
    ("seedseq", lambda seed: np.random.SeedSequence(seed)),
    ("generator", lambda seed: np.random.default_rng(seed)),
]


class TestAllEstimatorsDeterministic:
    """n_jobs>1 must be digest-identical to serial for *every* estimator and
    every RandomState spec the library accepts (int, SeedSequence, Generator)."""

    @pytest.mark.parametrize("label,make_seed", SEED_SPECS)
    def test_static_estimator_all_seed_specs(self, label, make_seed):
        kwargs = dict(STATIC_KWARGS)
        kwargs.pop("random_state")
        serial = estimate_static_obstruction_probability(
            **kwargs, random_state=make_seed(13)
        )
        parallel = estimate_static_obstruction_probability(
            **kwargs, random_state=make_seed(13), n_jobs=2
        )
        assert serial.describe() == parallel.describe()
        assert serial.details == parallel.details

    @pytest.mark.parametrize("label,make_seed", SEED_SPECS)
    def test_simulation_estimator_all_seed_specs(self, label, make_seed):
        serial = estimate_simulation_failure_probability(
            **_sim_kwargs(), random_state=make_seed(3)
        )
        parallel = estimate_simulation_failure_probability(
            **_sim_kwargs(), random_state=make_seed(3), n_jobs=2
        )
        assert serial.describe() == parallel.describe()
        assert serial.details == parallel.details

    @pytest.mark.parametrize("label,make_seed", SEED_SPECS)
    def test_find_max_feasible_catalog_all_seed_specs(self, label, make_seed):
        serial = find_max_feasible_catalog(
            **_catalog_kwargs(), random_state=make_seed(5)
        )
        parallel = find_max_feasible_catalog(
            **_catalog_kwargs(), random_state=make_seed(5), n_jobs=2
        )
        assert serial == parallel

    def test_new_flow_solvers_agree_with_hk_in_static_estimator(self):
        baseline = estimate_static_obstruction_probability(**STATIC_KWARGS)
        for solver in ("push_relabel", "edmonds_karp"):
            oracle = estimate_static_obstruction_probability(
                **STATIC_KWARGS, solver=solver
            )
            assert oracle.failures == baseline.failures
            assert oracle.details == baseline.details

    def test_n_jobs_rejects_non_integers(self):
        with pytest.raises(TypeError):
            estimate_static_obstruction_probability(**STATIC_KWARGS, n_jobs=2.5)
        with pytest.raises(TypeError):
            estimate_static_obstruction_probability(**STATIC_KWARGS, n_jobs=True)


class TestSeedDerivationEdgeCases:
    """Edge cases surfaced by the scenario determinism work (PR 2)."""

    def test_spawn_seed_sequences_rejects_negative_seed(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_seed_sequences(-5, 3)

    def test_spawn_seed_sequences_zero_children(self):
        assert spawn_seed_sequences(0, 0) == []

    def test_derive_seed_rejects_negative_stream(self):
        from repro.util.rng import derive_seed

        with pytest.raises(ValueError, match="non-negative"):
            derive_seed(1, stream=-1)

    def test_derive_seed_streams_are_stable(self):
        from repro.util.rng import derive_seed

        assert derive_seed(42, stream=0) == derive_seed(42, stream=0)
        assert derive_seed(42, stream=0) != derive_seed(42, stream=1)
