"""Tests for the preloading request strategy (Section 3)."""

import pytest

from repro.core.preloading import START_UP_DELAY_ROUNDS, Demand, PreloadingScheduler
from repro.core.video import Catalog


@pytest.fixture
def catalog():
    return Catalog(num_videos=5, num_stripes=4, duration=30)


class TestDemand:
    def test_validation(self):
        with pytest.raises(ValueError):
            Demand(time=-1, box_id=0, video_id=0)
        with pytest.raises(ValueError):
            Demand(time=0, box_id=-1, video_id=0)

    def test_ordering_by_time(self):
        assert Demand(1, 5, 2) < Demand(2, 0, 0)


class TestPreloadingScheduler:
    def test_single_demand_issues_one_preload_now(self, catalog):
        scheduler = PreloadingScheduler(catalog)
        immediate = scheduler.on_demand(Demand(time=3, box_id=0, video_id=1))
        assert len(immediate) == 1
        request = immediate[0]
        assert request.is_preload
        assert request.request_time == 3
        assert request.box_id == 0
        assert catalog.video_of_stripe(request.stripe_id) == 1

    def test_postponed_requests_queued_for_next_round(self, catalog):
        scheduler = PreloadingScheduler(catalog)
        scheduler.on_demand(Demand(time=3, box_id=0, video_id=1))
        postponed = scheduler.requests_due(4)
        assert len(postponed) == catalog.num_stripes_per_video - 1
        assert all(not r.is_preload for r in postponed)
        assert all(r.request_time == 4 for r in postponed)
        # All c stripes of the video are covered exactly once in total.
        stripes = {r.stripe_id for r in postponed}
        assert len(stripes) == 3

    def test_requests_due_pops_only_once(self, catalog):
        scheduler = PreloadingScheduler(catalog)
        scheduler.on_demand(Demand(time=3, box_id=0, video_id=1))
        assert scheduler.requests_due(4)
        assert scheduler.requests_due(4) == []

    def test_preload_stripe_rotates_round_robin(self, catalog):
        scheduler = PreloadingScheduler(catalog)
        c = catalog.num_stripes_per_video
        preloads = []
        for box in range(2 * c):
            immediate = scheduler.on_demand(Demand(time=0, box_id=box, video_id=2))
            preloads.append(catalog.stripe_index_of(immediate[0].stripe_id))
        # The p-th box preloads stripe p mod c: indices cycle 0..c-1 twice.
        assert preloads == [p % c for p in range(2 * c)]

    def test_counters_are_per_video(self, catalog):
        scheduler = PreloadingScheduler(catalog)
        a = scheduler.on_demand(Demand(time=0, box_id=0, video_id=0))[0]
        b = scheduler.on_demand(Demand(time=0, box_id=1, video_id=1))[0]
        assert catalog.stripe_index_of(a.stripe_id) == 0
        assert catalog.stripe_index_of(b.stripe_id) == 0
        assert scheduler.swarm_entry_count(0) == 1
        assert scheduler.swarm_entry_count(1) == 1
        assert scheduler.swarm_entry_count(4) == 0

    def test_total_requests_per_demand_is_c(self, catalog):
        scheduler = PreloadingScheduler(catalog)
        immediate = scheduler.on_demand(Demand(time=5, box_id=0, video_id=3))
        postponed = scheduler.requests_due(6)
        all_requests = immediate + postponed
        assert len(all_requests) == catalog.num_stripes_per_video
        assert {r.stripe_id for r in all_requests} == set(
            catalog.stripes_of_video(3).tolist()
        )

    def test_skip_locally_stored(self, catalog):
        scheduler = PreloadingScheduler(catalog, skip_locally_stored=True)
        local = {int(catalog.stripe_id(1, 0)), int(catalog.stripe_id(1, 2))}
        immediate = scheduler.on_demand(
            Demand(time=0, box_id=0, video_id=1), locally_stored=local
        )
        postponed = scheduler.requests_due(1)
        requested = {r.stripe_id for r in immediate + postponed}
        assert requested == set(catalog.stripes_of_video(1).tolist()) - local

    def test_skip_local_disabled_by_default(self, catalog):
        scheduler = PreloadingScheduler(catalog)
        local = {int(catalog.stripe_id(1, 0))}
        immediate = scheduler.on_demand(
            Demand(time=0, box_id=0, video_id=1), locally_stored=local
        )
        postponed = scheduler.requests_due(1)
        assert len(immediate) + len(postponed) == catalog.num_stripes_per_video

    def test_start_up_delay_constant(self, catalog):
        scheduler = PreloadingScheduler(catalog)
        assert scheduler.start_up_delay == START_UP_DELAY_ROUNDS == 3
        demand = Demand(time=7, box_id=0, video_id=0)
        assert scheduler.playback_start_round(demand) == 9

    def test_pending_rounds_and_reset(self, catalog):
        scheduler = PreloadingScheduler(catalog)
        scheduler.on_demand(Demand(time=2, box_id=0, video_id=0))
        scheduler.on_demand(Demand(time=5, box_id=1, video_id=1))
        assert scheduler.pending_rounds() == (3, 6)
        assert len(scheduler.demands_seen) == 2
        scheduler.reset()
        assert scheduler.pending_rounds() == ()
        assert scheduler.swarm_entry_count(0) == 0
        assert scheduler.demands_seen == ()

    def test_demand_for_unknown_video_raises(self, catalog):
        scheduler = PreloadingScheduler(catalog)
        with pytest.raises(ValueError):
            scheduler.on_demand(Demand(time=0, box_id=0, video_id=99))
