"""Snapshot/restore determinism of the stepwise session layer.

The property: for any scenario, solver and split point ``k``,
``snapshot after k rounds → restore → step to the horizon`` produces
per-round metric digests bit-identical to an uninterrupted run — i.e. a
snapshot captures the *entire* deterministic state (clock, swarms,
caches, possession index, RNG streams, warm-start assignment, pending
requests).
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import VodSession
from repro.scenarios.build import build_scenario
from repro.scenarios.registry import get_scenario

#: Scenario/solver grid pinned by the acceptance criteria: ≥3 registry
#: scenarios (covering churn, flash crowds and steady demand) × both the
#: Hopcroft–Karp kernel and the Dinic max-flow oracle.
SNAPSHOT_GRID = [
    (name, solver)
    for name in ("steady_state", "flashcrowd_spike", "churn_storm", "near_threshold_load")
    for solver in ("hopcroft_karp", "dinic")
]

ROUNDS = 10
SPLIT = 4


def _session_for(name: str, solver: str, rounds: int) -> VodSession:
    spec = get_scenario(name).with_overrides(solver=solver)
    return build_scenario(spec, min_horizon=rounds).session(horizon=rounds)


@pytest.mark.parametrize("name,solver", SNAPSHOT_GRID)
def test_snapshot_restore_step_matches_uninterrupted_run(name, solver):
    baseline = _session_for(name, solver, ROUNDS)
    baseline.step_until(round=ROUNDS)
    expected = [report.to_dict() for report in baseline.reports]
    expected_digests = [report.digest for report in baseline.reports]

    interrupted = _session_for(name, solver, ROUNDS)
    interrupted.step_until(round=SPLIT)
    snapshot = interrupted.snapshot()

    restored = VodSession.restore(snapshot)
    assert restored.now == SPLIT
    assert restored.rounds_completed == SPLIT
    restored.step_until(round=ROUNDS)

    assert [r.to_dict() for r in restored.reports] == expected
    assert [r.digest for r in restored.reports] == expected_digests
    assert restored.digest() == baseline.digest()

    # The aggregated SimulationResult agrees too (startup delays, swarm
    # violations, trace length — everything the metrics expose).
    assert (
        restored.result().metrics.to_dict() == baseline.result().metrics.to_dict()
    )


@pytest.mark.parametrize("name,solver", [("steady_state", "hopcroft_karp")])
def test_snapshot_is_restorable_multiple_times(name, solver):
    session = _session_for(name, solver, ROUNDS)
    session.step_until(round=SPLIT)
    snapshot = session.snapshot()

    first = VodSession.restore(snapshot)
    second = VodSession.restore(snapshot)
    assert first is not second
    first.step_until(round=ROUNDS)
    second.step_until(round=ROUNDS)
    assert first.digest() == second.digest()

    # The original session keeps stepping independently and identically.
    session.step_until(round=ROUNDS)
    assert session.digest() == first.digest()


def test_snapshot_file_round_trip(tmp_path):
    from repro.api import SessionSnapshot

    session = _session_for("flashcrowd_spike", "hopcroft_karp", ROUNDS)
    session.step_until(round=SPLIT)
    snapshot = session.snapshot()
    path = snapshot.to_file(tmp_path / "checkpoints" / "mid.ckpt")
    loaded = SessionSnapshot.from_file(path)
    assert loaded.time == SPLIT
    assert loaded.rounds_completed == SPLIT

    session.step_until(round=ROUNDS)
    restored = VodSession.restore(loaded)
    restored.step_until(round=ROUNDS)
    assert restored.digest() == session.digest()


def test_snapshot_preserves_pending_injected_demands():
    session = _session_for("steady_state", "hopcroft_karp", ROUNDS)
    session.step_until(round=SPLIT)
    session.submit(0, 1)
    snapshot = session.snapshot()

    restored = VodSession.restore(snapshot)
    assert restored.pending_demands == ((0, 1),)
    a = session.step()
    b = restored.step()
    assert a == b
    assert a.demands_injected == 1


def test_from_file_rejects_non_snapshots(tmp_path):
    import pickle

    from repro.api import SessionSnapshot

    path = tmp_path / "junk.ckpt"
    path.write_bytes(pickle.dumps({"not": "a snapshot"}))
    with pytest.raises(ValueError):
        SessionSnapshot.from_file(path)


class TestSnapshotFormatVersioning:
    """Snapshots are versioned: payloads pickle engine internals, so a
    layout change (the PR-4 struct-of-arrays core) bumps the format and
    older files must fail with a typed, documented error instead of
    deserializing into a torn engine."""

    FIXTURE_V1 = Path(__file__).parent / "fixtures" / "session_snapshot_v1.bin"

    def test_current_format_version_is_2(self):
        from repro.api.session import SNAPSHOT_FORMAT_VERSION

        assert SNAPSHOT_FORMAT_VERSION == 2

    def test_loading_a_v1_fixture_raises_a_typed_error(self):
        from repro.api import SessionSnapshot, SnapshotFormatError

        assert self.FIXTURE_V1.exists(), "pre-refactor fixture missing"
        with pytest.raises(SnapshotFormatError, match="format version 1"):
            SessionSnapshot.from_file(self.FIXTURE_V1)

    def test_restore_rejects_stale_in_memory_snapshots(self):
        from repro.api import SessionSnapshot, SnapshotFormatError, VodSession

        stale = SessionSnapshot(
            payload=b"irrelevant", time=3, rounds_completed=3, format_version=1
        )
        with pytest.raises(SnapshotFormatError, match="re-record"):
            VodSession.restore(stale)

    def test_snapshot_format_error_is_an_api_error(self):
        from repro.api import ApiError, SnapshotFormatError

        assert issubclass(SnapshotFormatError, ApiError)

    def test_fresh_snapshots_carry_the_current_version_and_round_trip(self, tmp_path):
        from repro.api import SessionSnapshot, VodSession
        from repro.api.session import SNAPSHOT_FORMAT_VERSION

        session = _session_for("steady_state", "hopcroft_karp", 6)
        session.step_until(rounds=3)
        snapshot = session.snapshot()
        assert snapshot.format_version == SNAPSHOT_FORMAT_VERSION
        path = snapshot.to_file(tmp_path / "current.ckpt")
        restored = VodSession.restore(SessionSnapshot.from_file(path))
        assert restored.rounds_completed == 3


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(split=st.integers(min_value=0, max_value=ROUNDS))
def test_snapshot_restore_property_any_split_point(split):
    """Hypothesis property: the split point never matters."""
    baseline = _session_for("steady_state", "hopcroft_karp", ROUNDS)
    baseline.step_until(round=ROUNDS)

    interrupted = _session_for("steady_state", "hopcroft_karp", ROUNDS)
    interrupted.step_until(round=split)
    restored = VodSession.restore(interrupted.snapshot())
    restored.step_until(round=ROUNDS)
    assert restored.digest() == baseline.digest()
